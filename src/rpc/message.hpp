// The Schooner wire protocol.
//
// All Manager/Server/procedure traffic is carried by one self-describing
// message frame, byte-encoded (big-endian) onto the virtual fabric. Field
// usage per kind:
//
//   kRegisterLine   a=requester description            -> kLineAck line=id,
//                                                         n=per-line call
//                                                           quota (0 = none);
//                                                      or kError
//                                                         n=kLineRejected
//                                                         (admission gate)
//   kStartRequest   line, a=machine, b=path,
//                   n bit0 = shared procedure          -> kStartAck a=addr
//   kSpawn          a=path, b=label, table=argv        -> kSpawnAck a=addr
//   kExport         line, a=origin path,
//                   table=(proc name, signature text),
//                   n bit0 = shared                    -> kExportAck
//   kLookup         line, a=proc name,
//                   b=import signature text            -> kLookupAck a=addr,
//                                                         b=resolved name,
//                                                         c=export sig text
//   kCall           a=proc name,
//                   b=import signature text, blob=args -> kReply blob=results
//   kQuit           line                               -> kQuitAck
//   kMove           line, a=proc name, b=target
//                   machine, c=path,
//                   n bit0 = transfer state            -> kMoveAck a=new addr
//   kStateRequest                                      -> kStateReply blob
//   kStateInstall   blob                               -> kStateAck
//   kShutdownProc   a=reason (one-way)
//   kPing                                              -> kPong
//   kManagerStop                                       -> (manager exits)
//   kError          n=ErrorCode, a=message (any reply position)
//
// Frames may carry a trailing *trace extension* (marker byte + three
// trace ids) so a client-side span and the procedure-side span of one
// call share a trace id. Frames without the extension decode exactly as
// before — peers built before the observability layer interoperate.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace npss::rpc {

enum class MessageKind : std::uint8_t {
  kRegisterLine = 1,
  kLineAck,
  kStartRequest,
  kStartAck,
  kSpawn,
  kSpawnAck,
  kExport,
  kExportAck,
  kLookup,
  kLookupAck,
  kCall,
  kReply,
  kQuit,
  kQuitAck,
  kMove,
  kMoveAck,
  kStateRequest,
  kStateReply,
  kStateInstall,
  kStateAck,
  kShutdownProc,
  kPing,
  kPong,
  kManagerStop,
  kError,
  // --- Replicated control plane (src/meta/), appended so frames from
  // pre-replication peers decode unchanged -------------------------------
  kMetaConfig,       ///< table=(index, replica address), n=term -> kMetaConfigAck
  kMetaConfigAck,
  kMetaHeartbeat,    ///< n=term, a=leader addr, b=last index, c=commit term,
                     ///< line=commit index (quorum piggyback)
  kMetaAppend,       ///< n=term, b=log index, c=prev entry term,
                     ///< line=commit index, blob=ChangeRecord
  kMetaVoteReq,      ///< n=term, a=candidate addr, b=last log index,
                     ///< c=replica index, line=last log term
  kMetaVoteAck,      ///< n=term, b="1" granted / "0" refused (one-way)
  kMetaFetch,        ///< b=from index: catch-up request -> kMetaFetchAck
  kMetaFetchAck,     ///< n=term, b=snapshot index, c=snapshot digest,
                     ///< a=snapshot entry term, line=commit index,
                     ///< blob=two nested blobs:
                     ///< (snapshot image — may be empty, record batch)
  kMetaWhoIsLeader,  ///< leader discovery -> kMetaLeaderAck
  kMetaLeaderAck,    ///< a=leader address ("" = election in progress),
                     ///< n=term, b=state digest, c=last applied index
  // --- Quorum commit (appended behind the existing kinds so mixed-build
  // frames keep decoding) --------------------------------------------------
  kMetaAppendAck,    ///< n=term, b=matched-through index (one-way)
};

std::string_view message_kind_name(MessageKind kind);

using LineId = std::int64_t;
constexpr LineId kNoLine = -1;

/// Marker byte introducing the optional trace extension after the table.
constexpr std::uint8_t kTraceExtensionMarker = 0x54;  // 'T'

struct Message {
  MessageKind kind = MessageKind::kError;
  std::uint64_t seq = 0;
  LineId line = kNoLine;
  std::string a, b, c;
  std::int64_t n = 0;
  util::Bytes blob;
  std::vector<std::pair<std::string, std::string>> table;
  /// Distributed-trace context; encoded on the wire only when active.
  obs::TraceContext trace;

  /// Construct the standard error reply for a request.
  static Message error_reply(const Message& request, util::ErrorCode code,
                             const std::string& text);

  bool is_error() const { return kind == MessageKind::kError; }

  /// If this is an error message, throw it as the corresponding exception.
  void raise_if_error() const;
};

util::Bytes encode_message(const Message& msg);
/// Append the encoding of `msg` to `out` (no intermediate buffer); the
/// bytes appended are identical to encode_message(msg).
void encode_message_into(util::ByteWriter& out, const Message& msg);
Message decode_message(std::span<const std::uint8_t> bytes);

}  // namespace npss::rpc
