#include "rpc/server.hpp"

#include "rpc/io.hpp"
#include "util/log.hpp"

namespace npss::rpc {

void server_main(sim::ProcessContext& ctx) {
  MessageIo io(ctx.cluster(), ctx.self_ptr());
  const std::string machine = ctx.self().machine().name;
  NPSS_LOG_INFO("server", "up on ", machine, " at ", io.address());
  while (auto in = io.receive()) {
    const Message& msg = in->msg;
    switch (msg.kind) {
      case MessageKind::kSpawn: {
        try {
          std::vector<std::string> args;
          args.reserve(msg.table.size() * 2);
          for (const auto& [key, value] : msg.table) {
            args.push_back(key);
            args.push_back(value);
          }
          sim::EndpointPtr ep =
              ctx.cluster().spawn_image(machine, msg.a, msg.b, args);
          // Process startup costs real time on the target machine
          // (fork/exec in the original); bill it to the new process.
          ep->clock().join(ctx.self().clock().now() + util::sim_ms(30));
          Message ack;
          ack.kind = MessageKind::kSpawnAck;
          ack.seq = msg.seq;
          ack.a = ep->address();
          io.send(in->from, std::move(ack));
          NPSS_LOG_DEBUG("server", machine, ": spawned ", msg.a, " as ",
                         ep->address());
        } catch (const util::Error& e) {
          io.send(in->from,
                  Message::error_reply(msg, util::ErrorCode::kStartupFailure,
                                       e.what()));
        }
        break;
      }
      case MessageKind::kPing:
        io.send(in->from,
                Message{.kind = MessageKind::kPong, .seq = msg.seq});
        break;
      case MessageKind::kShutdownProc:
        NPSS_LOG_INFO("server", machine, ": stopping");
        return;
      default:
        io.send(in->from,
                Message::error_reply(msg, util::ErrorCode::kProtocolError,
                                     "server: unexpected message"));
    }
  }
}

}  // namespace npss::rpc
