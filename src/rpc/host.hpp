// The remote-procedure host runtime: what the Schooner stub compiler's
// server-side output plus the runtime library amount to. An application
// wraps its procedures with make_procedure_image() and installs the result
// on a machine under a path; the Manager starts it on demand (§3.3).
//
// The host loop:
//   * registers its exports with the Manager (name-cased per the machine's
//     Fortran convention when the source language is Fortran, §4.1),
//   * serves kCall requests — unmarshaling through the machine's native
//     data formats, invoking the handler, marshaling results back,
//   * supports nested calls to other procedures in the same line
//     (ProcCall::call_remote), the Figure 1 control-flow chain,
//   * answers state save/restore messages for migration, and
//   * on kShutdownProc drains and error-answers queued calls, then exits.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "rpc/calling.hpp"
#include "rpc/io.hpp"
#include "rpc/message.hpp"
#include "sim/cluster.hpp"
#include "uts/canonical.hpp"
#include "uts/spec.hpp"

namespace npss::rpc {

class HostRuntime;

/// One in-flight invocation, as seen by a procedure handler.
/// `host` may be null for transports without a cluster runtime (the TCP
/// direct-connection host); compute() is then a no-op and nested
/// call_remote() is unavailable.
class ProcCall {
 public:
  ProcCall(const uts::Signature& signature, uts::ValueList values,
           HostRuntime* host)
      : signature_(&signature), values_(std::move(values)), host_(host) {}

  const uts::Signature& signature() const { return *signature_; }
  uts::ValueList& values() { return values_; }

  /// Indexed and named access to parameter slots.
  const uts::Value& arg(std::size_t index) const;
  const uts::Value& arg(std::string_view name) const;
  double real(std::string_view name) const { return arg(name).as_real(); }
  std::int64_t integer(std::string_view name) const {
    return arg(name).as_integer();
  }
  std::vector<double> reals(std::string_view name) const {
    return arg(name).as_real_vector();
  }

  /// Store a result (res/var) slot.
  void set(std::string_view name, uts::Value value);
  void set_real(std::string_view name, double value) {
    set(name, uts::Value::real(value));
  }

  /// Account simulated compute time for this invocation.
  void compute(double microseconds);

  /// Invoke another remote procedure in this process's line — the nested
  /// sequential call of Figure 1. `import_spec_text` is a full import
  /// declaration; `args` is parallel to its signature.
  uts::ValueList call_remote(const std::string& name,
                             const std::string& import_spec_text,
                             uts::ValueList args);

 private:
  std::size_t index_of(std::string_view name) const;

  const uts::Signature* signature_;
  uts::ValueList values_;
  HostRuntime* host_;
};

using ProcHandler = std::function<void(ProcCall&)>;

struct ProcedureDef {
  std::string name;  ///< as written in the export spec
  ProcHandler handler;
};

enum class SourceLanguage : std::uint8_t { kC = 0, kFortran };

struct ProcedureImageOptions {
  SourceLanguage language = SourceLanguage::kFortran;
  /// Fixed simulated compute cost added to every call (reference-CPU us);
  /// handlers can add more via ProcCall::compute.
  double compute_us_per_call = 0.0;
  /// Migration state hooks (the planned UTS state-list extension, §4.2).
  /// A procedure with neither hook is stateless and freely movable.
  std::function<util::Bytes()> save_state;
  std::function<void(std::span<const std::uint8_t>)> restore_state;
  /// Worker pool size for serving kCall. 0 (default) keeps the historical
  /// single-threaded loop. With N > 0, calls queue per *line* and N
  /// workers drain the lines round-robin (util::FairQueue), so one line's
  /// call storm queues behind itself instead of starving its neighbors —
  /// the shared-fleet fairness half of DESIGN.md §15. Pooled hosts serve
  /// concurrent calls, so handlers must be thread-safe; nested
  /// ProcCall::call_remote is unavailable in pooled mode (the reply
  /// stream is owned by the dispatch loop).
  int workers = 0;
};

/// Build a program image exporting `procs` per `spec_text` (which must hold
/// one export declaration per procedure). Install the result into a
/// sim::Cluster under a path; the Manager/Server machinery does the rest.
sim::ProgramImage make_procedure_image(std::string spec_text,
                                       std::vector<ProcedureDef> procs,
                                       ProcedureImageOptions options = {});

}  // namespace npss::rpc
