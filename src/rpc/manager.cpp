#include "rpc/manager.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <functional>
#include <map>
#include <optional>

#include "meta/changelog.hpp"
#include "meta/core.hpp"
#include "meta/election.hpp"
#include "meta/record.hpp"
#include "meta/snapshot.hpp"
#include "meta/state.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace npss::rpc {

namespace {

using util::ErrorCode;

// ManagerCounters is the live atomic tally each replica increments;
// ManagerStats stays the copyable per-system snapshot the benches read;
// the global registry carries the cumulative process-wide view.
void bump(const char* name) {
  if (obs::enabled()) {
    obs::Registry::global().counter(std::string("rpc.manager.") + name).add();
  }
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

using BindingPtr = std::shared_ptr<Binding>;

/// A name database: exact names plus upper/lower case synonyms (§4.1).
class NameDb {
 public:
  /// Register a binding under its canonical name and case synonyms.
  /// Throws DuplicateNameError if any synonym is already taken.
  void insert(BindingPtr binding) {
    std::vector<std::string> keys = synonyms(binding->canonical_name);
    for (const std::string& key : keys) {
      if (names_.contains(key)) {
        throw util::DuplicateNameError(
            "procedure '" + binding->canonical_name +
            "' conflicts with existing name '" + key + "'");
      }
    }
    for (const std::string& key : keys) names_[key] = binding;
    all_.push_back(std::move(binding));
  }

  BindingPtr find(const std::string& name) const {
    for (const std::string& key : synonyms(name)) {
      auto it = names_.find(key);
      if (it != names_.end()) return it->second;
    }
    return nullptr;
  }

  void erase(const BindingPtr& binding) {
    for (const std::string& key : synonyms(binding->canonical_name)) {
      auto it = names_.find(key);
      if (it != names_.end() && it->second == binding) names_.erase(it);
    }
    std::erase(all_, binding);
  }

  const std::vector<BindingPtr>& all() const { return all_; }

 private:
  static std::vector<std::string> synonyms(const std::string& name) {
    std::vector<std::string> keys{name};
    std::string lo = lower(name), up = upper(name);
    if (lo != name) keys.push_back(lo);
    if (up != name && up != lo) keys.push_back(up);
    return keys;
  }

  std::map<std::string, BindingPtr> names_;
  std::vector<BindingPtr> all_;
};

struct Line {
  LineId id = kNoLine;
  std::string description;
  std::int64_t quota = 0;  ///< outstanding-call quota granted at admission
  NameDb db;
};

/// A start or move in flight: the Server has spawned the process and the
/// Manager is waiting for its kExport before answering the requester.
struct PendingStart {
  std::string requester;
  std::uint64_t requester_seq = 0;
  MessageKind ack_kind = MessageKind::kStartAck;
  LineId line = kNoLine;
  bool shared = false;
  std::string spawned_address;
  std::string machine;
  std::string path;
  // Move bookkeeping: every binding that lived in the moved process, so
  // the replacement's exports can be gated against the old signatures.
  std::vector<BindingPtr> moved_bindings;
  std::optional<util::Bytes> state_blob;
};

class ManagerState {
 public:
  ManagerState(MessageIo& io, const ManagerConfig& config,
               std::shared_ptr<ManagerCounters> stats)
      : io_(io), config_(config), stats_(std::move(stats)) {
    // Manifest names obey the same case-synonym rule as the NameDb.
    for (const auto& [name, text] : config_.static_manifest) {
      folded_manifest_.emplace(lower(name), &text);
    }
  }

  /// A deferred client acknowledgement: runs once the transition that
  /// produced it is durable. Null-safe no-arg callable.
  using Completion = std::function<void()>;

  /// Replication hook: called with every state transition the Manager
  /// wants to commit (null in standalone mode). The replica driver
  /// appends the record to the changelog, replicates it, and invokes the
  /// completion only once a majority holds the entry — the quorum-commit
  /// rule meta_check forced. Completions the driver drops (leader
  /// deposed before commit) simply never run; the requester times out
  /// and retries against the new leader.
  void set_commit(
      std::function<void(meta::ChangeRecord, Completion)> commit) {
    commit_ = std::move(commit);
  }

  /// Rebuild the full Manager bookkeeping from the replicated state
  /// machine — what a freshly elected leader does before serving clients.
  /// Pending starts die with the old leader (their requesters time out and
  /// retry against the new one), so only lines and exports carry over.
  void rebuild_from(const meta::ReplicatedState& st) {
    lines_.clear();
    shared_db_ = NameDb{};
    pending_.clear();
    next_line_ = st.next_line();
    for (const auto& [id, info] : st.lines()) {
      Line line;
      line.id = id;
      line.description = info.description;
      line.quota = info.quota;
      lines_.emplace(id, std::move(line));
    }
    for (const auto& [address, group] : st.exports()) {
      NameDb* db = &shared_db_;
      if (!group.shared) {
        auto it = lines_.find(group.line);
        if (it == lines_.end()) continue;  // line quit raced the export
        db = &it->second.db;
      }
      for (const auto& [name, sig_text] : group.procs) {
        uts::ProcDecl decl = parse_signature_text(sig_text);
        auto binding = std::make_shared<Binding>();
        binding->canonical_name = name;
        binding->signature_text = sig_text;
        binding->signature = decl.signature;
        binding->address = address;
        binding->machine = group.machine;
        binding->path = group.path;
        binding->line = group.shared ? kNoLine : group.line;
        binding->shared = group.shared;
        db->insert(std::move(binding));
      }
    }
  }

  /// Returns false when the manager should exit.
  bool handle(const Incoming& in) {
    const Message& msg = in.msg;
    // Join the requester's trace so lookups/moves show up in its call tree.
    obs::Span span("rpc.manager",
                   std::string(message_kind_name(msg.kind)), msg.trace);
    try {
      switch (msg.kind) {
        case MessageKind::kRegisterLine: on_register_line(in); break;
        case MessageKind::kStartRequest: on_start_request(in); break;
        case MessageKind::kExport: on_export(in); break;
        case MessageKind::kLookup: on_lookup(in); break;
        case MessageKind::kQuit: on_quit(in); break;
        case MessageKind::kMove: on_move(in); break;
        case MessageKind::kPing:
          reply(in, Message{.kind = MessageKind::kPong, .seq = msg.seq});
          break;
        case MessageKind::kManagerStop:
          on_stop(in);
          return false;
        default:
          reply(in, Message::error_reply(msg, ErrorCode::kProtocolError,
                                         "manager: unexpected " +
                                             std::string(message_kind_name(
                                                 msg.kind))));
      }
    } catch (const util::Error& e) {
      reply(in, Message::error_reply(msg, e.code(), e.what()));
    }
    return true;
  }

 private:
  void reply(const Incoming& in, Message msg) { io_.send(in.from, msg); }

  Line& line_or_throw(LineId id) {
    auto it = lines_.find(id);
    if (it == lines_.end()) {
      throw util::ProtocolError("unknown line " + std::to_string(id));
    }
    return it->second;
  }

  void on_register_line(const Incoming& in) {
    // Admission gate: past max_lines the Manager says no instead of
    // degrading for everyone already admitted. The client's
    // Session::open_line backs off and re-asks (capacity frees when a
    // neighbor quits).
    if (config_.max_lines > 0 &&
        lines_.size() >= static_cast<std::size_t>(config_.max_lines)) {
      ++stats_->lines_rejected;
      bump("lines_rejected");
      if (obs::enabled()) {
        obs::Registry::global().counter("rpc.line.rejected").add();
      }
      NPSS_LOG_DEBUG("manager", "line for '", in.msg.a, "' rejected (",
                     lines_.size(), "/", config_.max_lines, " lines active)");
      reply(in, Message::error_reply(
                    in.msg, ErrorCode::kLineRejected,
                    "manager at capacity: " +
                        std::to_string(config_.max_lines) +
                        " concurrent line(s) admitted"));
      return;
    }
    Line line;
    line.id = next_line_++;
    line.description = in.msg.a;
    line.quota = config_.line_call_quota;
    ++stats_->lines_created;
    bump("lines_created");
    if (obs::enabled()) {
      obs::Registry& reg = obs::Registry::global();
      reg.counter("rpc.line.admitted").add();
      reg.gauge("rpc.line.active").add(1);
    }
    NPSS_LOG_DEBUG("manager", "line ", line.id, " registered for '",
                   in.msg.a, "' (", in.from, ")");
    LineId id = line.id;
    const std::int64_t quota = line.quota;
    lines_.emplace(id, std::move(line));
    // The ack grants the per-line outstanding-call quota in .n; the
    // client folds it into the line's LineBudget. Under replication the
    // ack is deferred until the record is quorum-committed — the
    // acked-registration-can-be-lost hole meta_check exposed.
    Completion ack = [this, from = in.from, seq = in.msg.seq, id, quota] {
      io_.send(from, Message{.kind = MessageKind::kLineAck, .seq = seq,
                             .line = id, .n = quota});
    };
    if (commit_) {
      meta::ChangeRecord rec;
      rec.kind = meta::RecordKind::kLineCreate;
      rec.line = id;
      rec.note = in.msg.a;
      rec.quota = quota;
      commit_(std::move(rec), std::move(ack));
    } else {
      ack();
    }
  }

  /// Spawn `path` on `machine` through its Server; returns the new address.
  std::string spawn_process(const std::string& machine,
                            const std::string& path, LineId line,
                            bool shared) {
    auto server = config_.servers.find(machine);
    if (server == config_.servers.end()) {
      throw util::NoSuchMachineError("no Schooner server on machine '" +
                                     machine + "'");
    }
    Message spawn;
    spawn.kind = MessageKind::kSpawn;
    spawn.a = path;
    spawn.b = "schx-proc";
    spawn.table = {{"manager", io_.address()},
                   {"line", std::to_string(line)},
                   {"shared", shared ? "1" : "0"},
                   {"path", path}};
    Message ack = io_.call(server->second, std::move(spawn));
    ++stats_->processes_started;
    bump("processes_started");
    return ack.a;
  }

  void on_start_request(const Incoming& in) {
    const Message& msg = in.msg;
    const bool shared = (msg.n & 1) != 0;
    if (!shared) line_or_throw(msg.line);
    std::string address = spawn_process(msg.a, msg.b, msg.line, shared);
    PendingStart pending;
    pending.requester = in.from;
    pending.requester_seq = msg.seq;
    pending.ack_kind = MessageKind::kStartAck;
    pending.line = shared ? kNoLine : msg.line;
    pending.shared = shared;
    pending.spawned_address = address;
    pending.machine = msg.a;
    pending.path = msg.b;
    pending_.push_back(std::move(pending));
    NPSS_LOG_DEBUG("manager", "start request: line ", msg.line, " path ",
                   msg.b, " on ", msg.a, " -> ", address);
  }

  void on_export(const Incoming& in) {
    const Message& msg = in.msg;
    // Find the pending start this export answers, if any. Exports may also
    // arrive unsolicited (a statically-started program, A3's "command
    // line" mode) in which case they are registered directly.
    auto pending_it =
        std::find_if(pending_.begin(), pending_.end(), [&](const auto& p) {
          return p.spawned_address == in.from;
        });
    const bool shared =
        (msg.n & 1) != 0 ||
        (pending_it != pending_.end() && pending_it->shared);
    NameDb* db = nullptr;
    LineId line = msg.line;
    if (shared) {
      db = &shared_db_;
      line = kNoLine;
    } else {
      db = &line_or_throw(line).db;
    }

    // Stale-manifest screen: the exporter stamps its spec text's sha256
    // into msg.c; a hash the manifest does not list means the spec changed
    // after uts_check ran. That alone is a warning, not a rejection — the
    // signature checks below decide whether the drift is compatible.
    if (config_.strict && !msg.c.empty() &&
        !config_.manifest_spec_hashes.empty() &&
        std::find(config_.manifest_spec_hashes.begin(),
                  config_.manifest_spec_hashes.end(),
                  msg.c) == config_.manifest_spec_hashes.end()) {
      ++stats_->stale_manifest_warnings;
      bump("static_check_stale");
      NPSS_LOG_WARN("manager", "stale manifest: spec hash ", msg.c,
                    " of exporter ", in.from,
                    " is not in the uts_check manifest; re-run uts_check");
    }

    std::vector<BindingPtr> registered;
    try {
      for (const auto& [name, sig_text] : msg.table) {
        uts::ProcDecl decl = parse_signature_text(sig_text);
        if (config_.strict) static_check(name, decl);
        auto binding = std::make_shared<Binding>();
        binding->canonical_name = name;
        binding->signature_text = sig_text;
        binding->signature = decl.signature;
        binding->address = in.from;
        binding->machine =
            pending_it != pending_.end() ? pending_it->machine : msg.b;
        binding->path = msg.a;
        binding->line = line;
        binding->shared = shared;
        db->insert(binding);
        registered.push_back(std::move(binding));
      }
      // Migration compat gate: a moved procedure's replacement must offer
      // an export surface the surviving clients can still bind — every
      // old binding signature (what the callers compiled against) must be
      // compatible with the replacement's export. Refusing here rides the
      // rollback path below, so the incompatible replica is dismissed
      // before any call can be mis-marshaled into it.
      if (pending_it != pending_.end() &&
          pending_it->ack_kind == MessageKind::kMoveAck) {
        for (const BindingPtr& old : pending_it->moved_bindings) {
          const BindingPtr* replacement = nullptr;
          for (const BindingPtr& b : registered) {
            if (lower(b->canonical_name) == lower(old->canonical_name)) {
              replacement = &b;
              break;
            }
          }
          std::string why;
          if (!replacement) {
            why = "replacement does not export it";
          } else {
            why = uts::signature_compatibility_error(
                old->signature, (*replacement)->signature);
          }
          if (!why.empty()) {
            ++stats_->compat_rejects;
            bump("compat_reject");
            throw util::TypeMismatchError(
                "move of '" + old->canonical_name +
                "' rejected: replacement on " + pending_it->machine +
                " is incompatible with the signature clients bound: " + why);
          }
        }
      }
    } catch (const util::Error& e) {
      // Roll back, dismiss the new process, and fail the start/move
      // request that caused it — *not* just the exporter, or the original
      // requester would wait forever.
      for (const BindingPtr& b : registered) db->erase(b);
      Message stop;
      stop.kind = MessageKind::kShutdownProc;
      stop.seq = io_.next_seq();
      stop.a = std::string("export rejected: ") + e.what();
      try {
        io_.send(in.from, std::move(stop));
      } catch (const util::NoRouteError&) {
      }
      if (pending_it != pending_.end()) {
        Message original;
        original.seq = pending_it->requester_seq;
        original.line = pending_it->line;
        io_.send(pending_it->requester,
                 Message::error_reply(original, e.code(), e.what()));
        pending_.erase(pending_it);
      }
      reply(in, Message::error_reply(msg, e.code(), e.what()));
      return;
    }

    // The export ack — and the start/move ack riding behind it — waits
    // for quorum commit, so a failover can never forget an export the
    // requester was already told about.
    std::optional<PendingStart> pending;
    if (pending_it != pending_.end()) {
      pending = std::move(*pending_it);
      pending_.erase(pending_it);
    }
    Completion ack = [this, from = in.from, seq = msg.seq,
                      pending = std::move(pending), registered]() mutable {
      io_.send(from,
               Message{.kind = MessageKind::kExportAck, .seq = seq});
      if (pending) finish_pending(*pending, registered);
    };
    if (commit_) {
      meta::ChangeRecord rec;
      rec.kind = meta::RecordKind::kExport;
      rec.line = line;
      rec.shared = shared;
      rec.address = in.from;
      rec.machine =
          registered.empty() ? std::string() : registered.front()->machine;
      rec.path = msg.a;
      rec.spec_hash = msg.c;
      rec.procs = msg.table;
      commit_(std::move(rec), std::move(ack));
    } else {
      ack();
    }
  }

  void finish_pending(PendingStart& pending,
                      const std::vector<BindingPtr>& registered) {
    if (pending.ack_kind == MessageKind::kMoveAck) {
      // Install transferred state in the new process before exposing it.
      if (pending.state_blob) {
        Message install;
        install.kind = MessageKind::kStateInstall;
        install.blob = *pending.state_blob;
        io_.call(pending.spawned_address, std::move(install));
      }
    }
    Message ack;
    ack.kind = pending.ack_kind;
    ack.seq = pending.requester_seq;
    ack.line = pending.line;
    ack.a = pending.spawned_address;
    for (const BindingPtr& b : registered) {
      ack.table.emplace_back(b->canonical_name, b->signature_text);
    }
    io_.send(pending.requester, std::move(ack));
  }

  /// Strict mode: the export table the Manager is about to build must be
  /// the one uts_check verified statically. Throws TypeMismatchError on a
  /// missing-from-manifest or signature-drift export, which rides the
  /// existing on_export rollback path — the exporting process is dismissed
  /// before any call can reach it.
  void static_check(const std::string& name, const uts::ProcDecl& decl) {
    auto it = folded_manifest_.find(lower(name));
    if (it == folded_manifest_.end()) {
      ++stats_->static_check_failures;
      bump("static_check_fail");
      throw util::TypeMismatchError(
          "static check: export '" + name +
          "' is not in the uts_check manifest");
    }
    uts::ProcDecl checked = parse_signature_text(*it->second);
    if (checked.signature != decl.signature) {
      // Drifted from the manifest. A *compatible* drift (the manifest
      // signature, as an import, still binds the new export — the
      // evolution rule uts_diff enforces) means the manifest is stale:
      // admit with a warning. An incompatible drift is rejected outright.
      std::string why = uts::signature_compatibility_error(checked.signature,
                                                           decl.signature);
      if (why.empty()) {
        ++stats_->stale_manifest_warnings;
        bump("static_check_stale");
        NPSS_LOG_WARN("manager", "stale manifest: export '", name,
                      "' drifted compatibly from the statically checked "
                      "signature; re-run uts_check");
        return;
      }
      ++stats_->static_check_failures;
      bump("static_check_fail");
      ++stats_->compat_rejects;
      bump("compat_reject");
      throw util::TypeMismatchError(
          "static check: export '" + name +
          "' drifted incompatibly from the statically checked signature (" +
          why + "): manifest " +
          uts::signature_to_string(checked.signature) + " != exported " +
          uts::signature_to_string(decl.signature));
    }
    bump("static_check_pass");
  }

  BindingPtr resolve(LineId line, const std::string& name) {
    // The caller's line first, then the shared database (§4.2).
    if (line != kNoLine) {
      auto it = lines_.find(line);
      if (it != lines_.end()) {
        if (BindingPtr b = it->second.db.find(name)) return b;
      }
    }
    return shared_db_.find(name);
  }

  void on_lookup(const Incoming& in) {
    const Message& msg = in.msg;
    ++stats_->lookups;
    bump("lookups");
    BindingPtr binding = resolve(msg.line, msg.a);
    if (!binding) {
      reply(in, Message::error_reply(msg, ErrorCode::kLookupFailure,
                                     "no procedure '" + msg.a + "' in line " +
                                         std::to_string(msg.line) +
                                         " or shared database"));
      return;
    }
    if (!msg.b.empty()) {
      uts::ProcDecl import_decl = parse_signature_text(msg.b);
      std::string why = uts::signature_compatibility_error(
          import_decl.signature, binding->signature);
      if (!why.empty()) {
        ++stats_->type_check_failures;
        bump("type_check_failures");
        // A lookup with an import text is a (re)bind: refusing it here is
        // the compat gate clients hit when rebinding after a move.
        ++stats_->compat_rejects;
        bump("compat_reject");
        reply(in,
              Message::error_reply(
                  msg, ErrorCode::kTypeMismatch,
                  "import of '" + msg.a + "' incompatible with export: " +
                      why));
        return;
      }
    }
    Message ack;
    ack.kind = MessageKind::kLookupAck;
    ack.seq = msg.seq;
    ack.line = msg.line;
    ack.a = binding->address;
    ack.b = binding->canonical_name;
    ack.c = binding->signature_text;
    reply(in, ack);
  }

  void shutdown_line_procs(Line& line, const std::string& reason) {
    // One process may export several procedures; shut each address down
    // exactly once.
    std::vector<std::string> addresses;
    for (const BindingPtr& b : line.db.all()) {
      if (std::find(addresses.begin(), addresses.end(), b->address) ==
          addresses.end()) {
        addresses.push_back(b->address);
      }
    }
    for (const std::string& addr : addresses) {
      Message stop;
      stop.kind = MessageKind::kShutdownProc;
      stop.seq = io_.next_seq();
      stop.a = reason;
      try {
        io_.send(addr, std::move(stop));
      } catch (const util::NoRouteError&) {
        // Process already gone; shutdown is idempotent.
      }
    }
  }

  void on_quit(const Incoming& in) {
    const Message& msg = in.msg;
    Completion ack = [this, from = in.from, seq = msg.seq,
                      line = msg.line] {
      io_.send(from, Message{.kind = MessageKind::kQuitAck, .seq = seq,
                             .line = line});
    };
    auto it = lines_.find(msg.line);
    if (it == lines_.end()) {
      ack();
      return;
    }
    NPSS_LOG_DEBUG("manager", "line ", msg.line, " quitting (",
                   it->second.db.all().size(), " bindings)");
    shutdown_line_procs(it->second, "line quit");
    lines_.erase(it);
    ++stats_->lines_shut_down;
    bump("lines_shut_down");
    if (obs::enabled()) {
      obs::Registry::global().gauge("rpc.line.active").sub(1);
    }
    if (commit_) {
      meta::ChangeRecord rec;
      rec.kind = meta::RecordKind::kLineQuit;
      rec.line = msg.line;
      commit_(std::move(rec), std::move(ack));
    } else {
      ack();
    }
  }

  void on_move(const Incoming& in) {
    const Message& msg = in.msg;
    const bool transfer_state = (msg.n & 1) != 0;
    BindingPtr binding = resolve(msg.line, msg.a);
    if (!binding) {
      throw util::LookupError("move: no procedure '" + msg.a + "' in line " +
                              std::to_string(msg.line));
    }
    ++stats_->moves;
    bump("moves");
    const std::string old_address = binding->address;

    // 1. Capture state if requested (the planned UTS state-list extension).
    //    A crashed or unreachable source must not abort the move — that is
    //    exactly when failover needs it — so capture is best-effort: the
    //    replacement simply starts from its initial state.
    std::optional<util::Bytes> state;
    if (transfer_state) {
      Message req;
      req.kind = MessageKind::kStateRequest;
      try {
        Message rep = io_.call_within(old_address, std::move(req),
                                      /*host_grace_ms=*/250);
        state = rep.blob;
      } catch (const util::NoRouteError& e) {
        NPSS_LOG_WARN("manager", "move '", msg.a, "': source ", old_address,
                      " is gone, moving without state (", e.what(), ")");
      } catch (const util::DeadlineError& e) {
        NPSS_LOG_WARN("manager", "move '", msg.a, "': source ", old_address,
                      " unresponsive, moving without state (", e.what(), ")");
      }
    }

    // 2. Shut down the original process.
    Message stop;
    stop.kind = MessageKind::kShutdownProc;
    stop.seq = io_.next_seq();
    stop.a = "moved to " + msg.b;
    try {
      io_.send(old_address, std::move(stop));
    } catch (const util::NoRouteError&) {
    }

    // 3. Remove every binding that lived in that process: the whole
    //    process moves, so sibling procedures move with it.
    NameDb& db = binding->shared ? shared_db_ : line_or_throw(msg.line).db;
    std::vector<BindingPtr> moved;
    for (const BindingPtr& b : db.all()) {
      if (b->address == old_address) moved.push_back(b);
    }
    for (const BindingPtr& b : moved) db.erase(b);
    if (commit_) {
      meta::ChangeRecord rec;
      rec.kind = meta::RecordKind::kRetire;
      rec.line = binding->line;
      rec.shared = binding->shared;
      rec.address = old_address;
      rec.note = "moved to " + msg.b;
      // No client ack rides the retirement itself — the kMoveAck waits
      // for the replacement's kExport commit — so the completion is empty.
      commit_(std::move(rec), [] {});
    }

    // 4. Start the replacement and wait for its export.
    const std::string path = msg.c.empty() ? binding->path : msg.c;
    std::string address =
        spawn_process(msg.b, path, binding->line, binding->shared);
    PendingStart pending;
    pending.requester = in.from;
    pending.requester_seq = msg.seq;
    pending.ack_kind = MessageKind::kMoveAck;
    pending.line = binding->line;
    pending.shared = binding->shared;
    pending.spawned_address = address;
    pending.machine = msg.b;
    pending.path = path;
    pending.moved_bindings = std::move(moved);
    pending.state_blob = std::move(state);
    pending_.push_back(std::move(pending));
    NPSS_LOG_DEBUG("manager", "moving '", msg.a, "' ", old_address, " -> ",
                   address);
  }

  void on_stop(const Incoming& in) {
    for (auto& [id, line] : lines_) {
      shutdown_line_procs(line, "manager stopping");
    }
    if (obs::enabled() && !lines_.empty()) {
      obs::Registry::global().gauge("rpc.line.active").sub(
          static_cast<double>(lines_.size()));
    }
    lines_.clear();
    for (const BindingPtr& b : shared_db_.all()) {
      Message stop;
      stop.kind = MessageKind::kShutdownProc;
      stop.seq = io_.next_seq();
      stop.a = "manager stopping";
      try {
        io_.send(b->address, std::move(stop));
      } catch (const util::NoRouteError&) {
      }
    }
    reply(in, Message{.kind = MessageKind::kQuitAck, .seq = in.msg.seq});
  }

  MessageIo& io_;
  const ManagerConfig& config_;
  std::shared_ptr<ManagerCounters> stats_;
  std::function<void(meta::ChangeRecord, Completion)> commit_;
  /// case-folded name -> manifest declaration text (owned by config_).
  std::map<std::string, const std::string*> folded_manifest_;
  std::map<LineId, Line> lines_;
  NameDb shared_db_;
  std::vector<PendingStart> pending_;
  LineId next_line_ = 1;
};

/// One replica of a Manager group: a meta::ReplicaCore — the pure
/// steppable consensus state machine that src/mc/'s meta_check
/// exhaustively model-checks — driven by host time and rpc::Message
/// frames. The driver owns everything impure (the clock anchor behind
/// the core's single logical timer, the address<->replica-index map,
/// wire framing, the deferred client completions) and the core owns the
/// protocol, so the schedules the checker proves safe are the schedules
/// this loop can actually produce.
///
/// Client acks are quorum-committed: ManagerState hands each transition
/// to the core as a proposal plus a completion, and the completion runs
/// only when the core reports the entry committed (majority-held). A
/// deposed leader drops its completions — those requesters time out and
/// retry against the new leader, instead of holding an ack for state
/// that no longer exists.
class ReplicaDriver {
 public:
  ReplicaDriver(MessageIo& io, const ManagerConfig& config,
                std::shared_ptr<ManagerCounters> stats)
      : io_(io), config_(config), stats_(stats),
        manager_(io, config, std::move(stats)) {
    manager_.set_commit(
        [this](meta::ChangeRecord rec, ManagerState::Completion done) {
          const std::uint64_t index = core_->propose(std::move(rec));
          if (index != 0) completions_[index] = std::move(done);
        });
  }

  void run() {
    if (!await_config()) return;
    Clock::time_point anchor = Clock::now();
    std::uint64_t anchored_gen = core_->timer_generation();
    while (running_) {
      pump();
      if (!running_) break;
      if (core_->timer_generation() != anchored_gen) {
        // The core restarted its quiet-period countdown (heartbeat
        // accepted, role or term changed): re-anchor the host clock.
        anchored_gen = core_->timer_generation();
        anchor = Clock::now();
      }
      const int wait = core_->timer_ms() - elapsed_ms(anchor);
      if (wait <= 0) {
        core_->fire_timer();
        anchor = Clock::now();
        anchored_gen = core_->timer_generation();
        continue;
      }
      auto in = io_.receive_for(wait);
      if (!in) {
        if (io_.endpoint().closed()) running_ = false;
        continue;
      }
      dispatch(*in);
    }
    NPSS_LOG_INFO("manager", "replica ", my_index_, " at ", io_.address(),
                  " stopped (term ", core_ ? core_->term() : 0, ")");
  }

 private:
  using Clock = std::chrono::steady_clock;

  static int elapsed_ms(Clock::time_point since) {
    return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - since).count());
  }

  bool is_client_kind(MessageKind kind) const {
    switch (kind) {
      case MessageKind::kRegisterLine:
      case MessageKind::kStartRequest:
      case MessageKind::kExport:
      case MessageKind::kLookup:
      case MessageKind::kQuit:
      case MessageKind::kMove:
        return true;
      default:
        return false;
    }
  }

  /// Bootstrap: replica addresses only exist after every replica process
  /// has spawned, so SchoonerSystem delivers the membership table in a
  /// kMetaConfig handshake. Replica 0 is the term-1 leader by convention.
  bool await_config() {
    while (auto in = io_.receive()) {
      const Message& msg = in->msg;
      if (msg.kind == MessageKind::kMetaConfig) {
        my_index_ = static_cast<int>(msg.n);
        peers_.clear();
        for (const auto& [index, address] : msg.table) {
          peers_.emplace_back(std::stoi(index), address);
        }
        std::sort(peers_.begin(), peers_.end());
        meta::CoreConfig cc;
        cc.index = my_index_;
        cc.replicas = static_cast<int>(peers_.size());
        cc.seed = config_.election_seed;
        cc.snapshot_interval = config_.snapshot_interval;
        cc.heartbeat_ms = config_.heartbeat_ms;
        cc.election_base_ms = config_.election_base_ms;
        cc.quorum_commit = true;
        core_.emplace(cc);
        core_->start(my_index_ == 0 ? meta::Role::kLeader
                                    : meta::Role::kFollower,
                     /*term=*/1, /*leader_index=*/0);
        io_.send(in->from, Message{.kind = MessageKind::kMetaConfigAck,
                                   .seq = msg.seq});
        NPSS_LOG_INFO("manager", "replica ", my_index_, "/", peers_.size(),
                      " at ", io_.address(), " configured as ",
                      meta::role_name(core_->role()));
        return true;
      }
      if (msg.kind == MessageKind::kMetaConfigAck) continue;
      if (msg.kind == MessageKind::kManagerStop) {
        io_.send(in->from,
                 Message{.kind = MessageKind::kQuitAck, .seq = msg.seq});
        running_ = false;
        return false;
      }
      redirect(*in);
    }
    running_ = false;
    return false;
  }

  int addr_index(const std::string& address) const {
    for (const auto& [idx, addr] : peers_) {
      if (addr == address) return idx;
    }
    return -1;
  }

  std::string addr_of(int index) const {
    for (const auto& [idx, addr] : peers_) {
      if (idx == index) return addr;
    }
    return {};
  }

  /// Drain the core's queued side effects: protocol messages onto the
  /// wire, commit/role events into client acks and Manager rebuilds,
  /// counter deltas into the shared atomics.
  void pump() {
    for (meta::Outbound& out : core_->take_outbound()) {
      const std::string to = addr_of(out.to);
      if (to.empty()) continue;
      try {
        io_.send(to, to_wire(out.msg));
      } catch (const util::NoRouteError&) {
        // Dead peer; it catches up via snapshot + tail if it returns.
      }
    }
    for (const meta::CoreEvent& ev : core_->take_events()) on_event(ev);
    sync_counters();
  }

  void on_event(const meta::CoreEvent& ev) {
    switch (ev.kind) {
      case meta::CoreEventKind::kBecameLeader:
        // The projection includes the uncommitted tail the no-op barrier
        // is about to commit — our own entries cannot be truncated while
        // we stay leader, so serving from it is safe.
        manager_.rebuild_from(core_->projected_state());
        NPSS_LOG_INFO("manager", "replica ", my_index_,
                      " elected leader for term ", ev.term, ": ",
                      core_->state().lines().size(), " line(s), ",
                      core_->state().exports().size(),
                      " export group(s) rebuilt from log index ",
                      core_->state().last_applied());
        break;
      case meta::CoreEventKind::kSteppedDown:
        // Unacked client work dies with the leadership; requesters time
        // out and retry against whoever won term ev.term.
        completions_.clear();
        NPSS_LOG_WARN("manager", "replica ", my_index_,
                      " deposed: following term ", ev.term);
        break;
      case meta::CoreEventKind::kCommitted: {
        auto it = completions_.find(ev.index);
        if (it == completions_.end()) break;
        ManagerState::Completion done = std::move(it->second);
        completions_.erase(it);
        try {
          done();
        } catch (const util::Error& e) {
          NPSS_LOG_WARN("manager", "ack for committed index ", ev.index,
                        " undeliverable: ", e.what());
        }
        break;
      }
    }
  }

  void sync_counters() {
    const meta::CoreCounters& now = core_->counters();
    const auto drain = [](std::uint64_t current, std::uint64_t& seen) {
      const std::uint64_t delta = current - seen;
      seen = current;
      return delta;
    };
    if (const std::uint64_t d = drain(now.log_appends, synced_.log_appends)) {
      stats_->log_appends += d;
      if (obs::enabled()) {
        obs::Registry::global().counter("rpc.meta.log_appends").add(
            static_cast<double>(d));
      }
    }
    if (const std::uint64_t d =
            drain(now.snapshot_installs, synced_.snapshot_installs)) {
      stats_->snapshot_installs += d;
      if (obs::enabled()) {
        obs::Registry::global().counter("rpc.meta.snapshot_installs").add(
            static_cast<double>(d));
      }
    }
    if (const std::uint64_t d =
            drain(now.leader_elections, synced_.leader_elections)) {
      stats_->leader_elections += d;
      if (obs::enabled()) {
        obs::Registry::global().counter("rpc.meta.leader_elections").add(
            static_cast<double>(d));
      }
    }
  }

  void dispatch(const Incoming& in) {
    const Message& msg = in.msg;
    switch (msg.kind) {
      case MessageKind::kMetaHeartbeat:
      case MessageKind::kMetaAppend:
      case MessageKind::kMetaAppendAck:
      case MessageKind::kMetaVoteReq:
      case MessageKind::kMetaVoteAck:
      case MessageKind::kMetaFetch:
      case MessageKind::kMetaFetchAck:
        if (auto m = from_wire(in)) core_->handle(*m);
        return;
      case MessageKind::kMetaConfig:
        // Duplicate handshake delivery: re-ack, the table is unchanged.
        reply_to(in.from, Message{.kind = MessageKind::kMetaConfigAck,
                                  .seq = msg.seq});
        return;
      case MessageKind::kMetaWhoIsLeader:
        answer_who_is_leader(in);
        return;
      case MessageKind::kPing:
        reply_to(in.from, Message{.kind = MessageKind::kPong,
                                  .seq = msg.seq});
        return;
      case MessageKind::kManagerStop:
        if (core_->role() == meta::Role::kLeader) {
          if (!manager_.handle(in)) running_ = false;
        } else {
          reply_to(in.from, Message{.kind = MessageKind::kQuitAck,
                                    .seq = msg.seq});
          running_ = false;
        }
        return;
      default:
        if (core_->role() == meta::Role::kLeader) {
          if (!manager_.handle(in)) running_ = false;
        } else {
          redirect(in);
        }
    }
  }

  /// rpc::Message <-> meta::Msg framing. The core speaks replica indices
  /// and typed fields; the wire speaks addresses and the shared Message
  /// struct (field usage documented on each MessageKind).
  Message to_wire(const meta::Msg& m) {
    Message w;
    w.seq = io_.next_seq();
    w.n = static_cast<std::int64_t>(m.term);
    switch (m.kind) {
      case meta::MsgKind::kHeartbeat:
        w.kind = MessageKind::kMetaHeartbeat;
        w.a = io_.address();
        w.b = std::to_string(m.last_index);
        w.c = std::to_string(m.commit_term);
        w.line = static_cast<std::int64_t>(m.commit);
        break;
      case meta::MsgKind::kAppend:
        w.kind = MessageKind::kMetaAppend;
        w.b = std::to_string(m.index);
        w.c = std::to_string(m.prev_term);
        w.line = static_cast<std::int64_t>(m.commit);
        w.blob = meta::encode_record(m.record);
        break;
      case meta::MsgKind::kAppendAck:
        w.kind = MessageKind::kMetaAppendAck;
        w.b = std::to_string(m.index);
        break;
      case meta::MsgKind::kVoteReq:
        w.kind = MessageKind::kMetaVoteReq;
        w.a = io_.address();
        w.b = std::to_string(m.last_index);
        w.c = std::to_string(my_index_);
        w.line = static_cast<std::int64_t>(m.last_term);
        break;
      case meta::MsgKind::kVoteAck:
        w.kind = MessageKind::kMetaVoteAck;
        w.b = m.granted ? "1" : "0";
        break;
      case meta::MsgKind::kFetch:
        w.kind = MessageKind::kMetaFetch;
        w.b = std::to_string(m.index);
        break;
      case meta::MsgKind::kFetchAck: {
        w.kind = MessageKind::kMetaFetchAck;
        w.a = std::to_string(m.snap_term);
        w.b = std::to_string(m.snap_index);
        w.c = m.snap_digest;
        w.line = static_cast<std::int64_t>(m.commit);
        util::ByteWriter payload;
        payload.blob(m.snapshot);
        payload.blob(meta::encode_record_batch(m.batch));
        w.blob = std::move(payload).take();
        break;
      }
    }
    return w;
  }

  std::optional<meta::Msg> from_wire(const Incoming& in) {
    const Message& msg = in.msg;
    meta::Msg m;
    m.from = addr_index(in.from);
    if (m.from < 0) return std::nullopt;  // not a member of this group
    m.term = msg.n < 0 ? 0 : static_cast<std::uint64_t>(msg.n);
    const auto u64 = [](const std::string& s) {
      return s.empty() ? std::uint64_t{0} : std::stoull(s);
    };
    const auto commit_of = [&msg] {
      return msg.line < 0 ? std::uint64_t{0}
                          : static_cast<std::uint64_t>(msg.line);
    };
    try {
      switch (msg.kind) {
        case MessageKind::kMetaHeartbeat:
          m.kind = meta::MsgKind::kHeartbeat;
          m.last_index = u64(msg.b);
          m.commit_term = u64(msg.c);
          m.commit = commit_of();
          break;
        case MessageKind::kMetaAppend:
          m.kind = meta::MsgKind::kAppend;
          m.index = u64(msg.b);
          m.prev_term = u64(msg.c);
          m.commit = commit_of();
          m.record = meta::decode_record(msg.blob);
          break;
        case MessageKind::kMetaAppendAck:
          m.kind = meta::MsgKind::kAppendAck;
          m.index = u64(msg.b);
          break;
        case MessageKind::kMetaVoteReq:
          m.kind = meta::MsgKind::kVoteReq;
          m.last_index = u64(msg.b);
          m.last_term = msg.line < 0
                            ? std::uint64_t{0}
                            : static_cast<std::uint64_t>(msg.line);
          break;
        case MessageKind::kMetaVoteAck:
          m.kind = meta::MsgKind::kVoteAck;
          m.granted = msg.b == "1";
          break;
        case MessageKind::kMetaFetch:
          m.kind = meta::MsgKind::kFetch;
          m.index = msg.b.empty() ? 1 : u64(msg.b);
          break;
        case MessageKind::kMetaFetchAck: {
          m.kind = meta::MsgKind::kFetchAck;
          m.snap_term = u64(msg.a);
          m.snap_index = u64(msg.b);
          m.snap_digest = msg.c;
          m.commit = commit_of();
          util::ByteReader payload(msg.blob);
          m.snapshot = payload.blob();
          m.batch = meta::decode_record_batch(payload.blob());
          break;
        }
        default:
          return std::nullopt;
      }
    } catch (const std::exception&) {
      // Malformed frame (torn numeral, bad record bytes): drop it; the
      // protocol re-sends or re-fetches, it never trusts a broken frame.
      return std::nullopt;
    }
    return m;
  }

  void answer_who_is_leader(const Incoming& in) {
    Message ack;
    ack.kind = MessageKind::kMetaLeaderAck;
    ack.seq = in.msg.seq;
    const int leader = core_->leader_index();
    ack.a = leader >= 0 ? addr_of(leader) : std::string();
    ack.n = static_cast<std::int64_t>(core_->term());
    ack.b = core_->state().digest();
    ack.c = std::to_string(core_->state().last_applied());
    reply_to(in.from, std::move(ack));
  }

  /// Non-leader answer to a client request: kNotLeader with the best known
  /// leader hint in .b, so CallCore can re-bind without a discovery scan.
  void redirect(const Incoming& in) {
    if (in.msg.kind == MessageKind::kPing) {
      reply_to(in.from,
               Message{.kind = MessageKind::kPong, .seq = in.msg.seq});
      return;
    }
    if (!is_client_kind(in.msg.kind)) {
      NPSS_LOG_DEBUG("manager", "replica ", my_index_, " ignoring ",
                     message_kind_name(in.msg.kind), " from ", in.from);
      return;
    }
    Message err = Message::error_reply(
        in.msg, ErrorCode::kNotLeader,
        "manager replica " + std::to_string(my_index_) + " at " +
            io_.address() + " is not the leader");
    const int leader = core_ ? core_->leader_index() : -1;
    err.b = leader >= 0 ? addr_of(leader) : std::string();
    reply_to(in.from, std::move(err));
  }

  void reply_to(const std::string& to, Message msg) {
    try {
      io_.send(to, std::move(msg));
    } catch (const util::NoRouteError&) {
      // Requester died while we composed the answer; nothing to do.
    }
  }

  MessageIo& io_;
  const ManagerConfig& config_;
  std::shared_ptr<ManagerCounters> stats_;
  ManagerState manager_;

  bool running_ = true;
  int my_index_ = 0;
  /// (replica index, address), sorted by index; includes this replica.
  std::vector<std::pair<int, std::string>> peers_;
  std::optional<meta::ReplicaCore> core_;
  /// Client acks keyed by the changelog index whose commit releases them.
  std::map<std::uint64_t, ManagerState::Completion> completions_;
  meta::CoreCounters synced_;  ///< counters already folded into stats_
};

}  // namespace

std::string signature_text(uts::DeclKind kind, const std::string& name,
                           const uts::Signature& sig) {
  return uts::decl_to_string(uts::ProcDecl{kind, name, sig});
}

uts::ProcDecl parse_signature_text(const std::string& text) {
  uts::SpecFile file = uts::parse_spec(text);
  if (file.decls.size() != 1) {
    throw util::ParseError("expected exactly one declaration in '" + text +
                           "'");
  }
  return file.decls.front();
}

void manager_main(sim::ProcessContext& ctx, const ManagerConfig& config,
                  std::shared_ptr<ManagerCounters> stats) {
  MessageIo io(ctx.cluster(), ctx.self_ptr());
  if (config.replicated) {
    ReplicaDriver driver(io, config, std::move(stats));
    NPSS_LOG_INFO("manager", "replica up at ", io.address());
    driver.run();
    return;
  }
  ManagerState state(io, config, std::move(stats));
  NPSS_LOG_INFO("manager", "up at ", io.address());
  while (auto in = io.receive()) {
    if (!state.handle(*in)) break;
  }
  NPSS_LOG_INFO("manager", "stopped");
}

}  // namespace npss::rpc
