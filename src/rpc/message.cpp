#include "rpc/message.hpp"

namespace npss::rpc {

using util::ByteReader;
using util::ByteWriter;

std::string_view message_kind_name(MessageKind kind) {
  switch (kind) {
    case MessageKind::kRegisterLine: return "register-line";
    case MessageKind::kLineAck: return "line-ack";
    case MessageKind::kStartRequest: return "start-request";
    case MessageKind::kStartAck: return "start-ack";
    case MessageKind::kSpawn: return "spawn";
    case MessageKind::kSpawnAck: return "spawn-ack";
    case MessageKind::kExport: return "export";
    case MessageKind::kExportAck: return "export-ack";
    case MessageKind::kLookup: return "lookup";
    case MessageKind::kLookupAck: return "lookup-ack";
    case MessageKind::kCall: return "call";
    case MessageKind::kReply: return "reply";
    case MessageKind::kQuit: return "quit";
    case MessageKind::kQuitAck: return "quit-ack";
    case MessageKind::kMove: return "move";
    case MessageKind::kMoveAck: return "move-ack";
    case MessageKind::kStateRequest: return "state-request";
    case MessageKind::kStateReply: return "state-reply";
    case MessageKind::kStateInstall: return "state-install";
    case MessageKind::kStateAck: return "state-ack";
    case MessageKind::kShutdownProc: return "shutdown-proc";
    case MessageKind::kPing: return "ping";
    case MessageKind::kPong: return "pong";
    case MessageKind::kManagerStop: return "manager-stop";
    case MessageKind::kError: return "error";
    case MessageKind::kMetaConfig: return "meta-config";
    case MessageKind::kMetaConfigAck: return "meta-config-ack";
    case MessageKind::kMetaHeartbeat: return "meta-heartbeat";
    case MessageKind::kMetaAppend: return "meta-append";
    case MessageKind::kMetaVoteReq: return "meta-vote-req";
    case MessageKind::kMetaVoteAck: return "meta-vote-ack";
    case MessageKind::kMetaFetch: return "meta-fetch";
    case MessageKind::kMetaFetchAck: return "meta-fetch-ack";
    case MessageKind::kMetaWhoIsLeader: return "meta-who-is-leader";
    case MessageKind::kMetaLeaderAck: return "meta-leader-ack";
    case MessageKind::kMetaAppendAck: return "meta-append-ack";
  }
  return "?";
}

Message Message::error_reply(const Message& request, util::ErrorCode code,
                             const std::string& text) {
  Message out;
  out.kind = MessageKind::kError;
  out.seq = request.seq;
  out.line = request.line;
  out.n = static_cast<std::int64_t>(code);
  out.a = text;
  return out;
}

void Message::raise_if_error() const {
  if (!is_error()) return;
  util::raise_error(static_cast<util::ErrorCode>(n), a);
}

util::Bytes encode_message(const Message& msg) {
  ByteWriter out;
  encode_message_into(out, msg);
  return std::move(out).take();
}

void encode_message_into(ByteWriter& out, const Message& msg) {
  out.u8(static_cast<std::uint8_t>(msg.kind));
  out.u64(msg.seq);
  out.i64(msg.line);
  out.str(msg.a);
  out.str(msg.b);
  out.str(msg.c);
  out.i64(msg.n);
  out.blob(msg.blob);
  out.u32(static_cast<std::uint32_t>(msg.table.size()));
  for (const auto& [key, value] : msg.table) {
    out.str(key);
    out.str(value);
  }
  if (msg.trace.active()) {
    // Trailing extension: peers that predate it never see it (an
    // untraced frame is byte-identical to the old format), and our
    // decoder accepts frames without it.
    out.u8(kTraceExtensionMarker);
    out.u64(msg.trace.trace_id);
    out.u64(msg.trace.span_id);
    out.u64(msg.trace.parent_span_id);
  }
}

Message decode_message(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  Message msg;
  msg.kind = static_cast<MessageKind>(in.u8());
  msg.seq = in.u64();
  msg.line = in.i64();
  msg.a = in.str();
  msg.b = in.str();
  msg.c = in.str();
  msg.n = in.i64();
  msg.blob = in.blob();
  const std::uint32_t rows = in.u32();
  // Never trust a wire-supplied count for allocation: a corrupted frame
  // could demand gigabytes before the element reads detect underflow.
  // Each row needs at least 8 bytes (two length prefixes).
  if (static_cast<std::size_t>(rows) * 8 > in.remaining()) {
    throw util::EncodingError("table row count " + std::to_string(rows) +
                              " exceeds frame size");
  }
  msg.table.reserve(rows);
  for (std::uint32_t i = 0; i < rows; ++i) {
    std::string key = in.str();
    std::string value = in.str();
    msg.table.emplace_back(std::move(key), std::move(value));
  }
  if (!in.exhausted()) {
    // Optional trace extension (absent on frames from pre-trace peers).
    const std::uint8_t marker = in.u8();
    if (marker != kTraceExtensionMarker) {
      throw util::EncodingError("unknown frame extension marker " +
                                std::to_string(marker));
    }
    msg.trace.trace_id = in.u64();
    msg.trace.span_id = in.u64();
    msg.trace.parent_span_id = in.u64();
  }
  if (!in.exhausted()) {
    throw util::EncodingError("trailing bytes in message frame");
  }
  return msg;
}

}  // namespace npss::rpc
