// The client-side call core shared by SchoonerClient stubs and nested
// server-side calls: bind (Manager lookup with type check), marshal through
// the caller's native formats, invoke, and recover from stale bindings by
// re-querying the Manager — the §4.2 cache-update path used after a
// procedure migrates.
#pragma once

#include <functional>
#include <string>

#include "rpc/io.hpp"
#include "rpc/message.hpp"
#include "uts/canonical.hpp"
#include "uts/spec.hpp"

namespace npss::rpc {

/// Simulated marshaling cost billed per canonical byte (at reference-CPU
/// speed); both client and host runtimes charge it.
constexpr double kMarshalUsPerByte = 0.02;

/// Per-importer cached binding ("procedure name caches within each
/// procedure in the line", §4.2).
struct BindingCache {
  std::string address;        ///< empty = unbound
  std::string resolved_name;  ///< exporter-cased name
  int lookups = 0;            ///< Manager queries performed (bench metric)
  int stale_retries = 0;      ///< calls that hit a moved procedure
};

struct CallCore {
  MessageIo* io = nullptr;
  std::string manager;
  LineId line = kNoLine;
  const arch::ArchDescriptor* arch = nullptr;
  /// Bills simulated marshal CPU time (may be empty).
  std::function<void(double)> compute;

  /// Resolve `name` through the Manager (filling `cache`), then perform
  /// one call. On a stale binding the cache is refreshed and the call
  /// retried once. Returns the full import-signature-parallel value list:
  /// val slots keep the caller's arguments, res/var slots carry results.
  uts::ValueList invoke(const std::string& name,
                        const uts::ProcDecl& import_decl,
                        const std::string& import_text, uts::ValueList args,
                        BindingCache& cache) const;

  /// Just the bind step (used by benches isolating lookup cost).
  void bind(const std::string& name, const std::string& import_text,
            BindingCache& cache) const;
};

}  // namespace npss::rpc
