// The client-side call core shared by SchoonerClient stubs and nested
// server-side calls: bind (Manager lookup with type check), marshal through
// the caller's native formats, invoke, and recover from stale bindings by
// re-querying the Manager — the §4.2 cache-update path used after a
// procedure migrates.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "rpc/io.hpp"
#include "rpc/message.hpp"
#include "util/clock.hpp"
#include "uts/canonical.hpp"
#include "uts/marshal_plan.hpp"
#include "uts/spec.hpp"

namespace npss::rpc {

/// Simulated marshaling cost billed per canonical byte (at reference-CPU
/// speed); both client and host runtimes charge it.
constexpr double kMarshalUsPerByte = 0.02;

/// Per-importer cached binding ("procedure name caches within each
/// procedure in the line", §4.2). The per-stub metrics are obs counters;
/// process-wide aggregates of the same events land in the global
/// obs::Registry under rpc.client.*.
///
/// Threading: line-thread confined, deliberately unlocked
/// (lock_hierarchy.md). A BindingCache is owned by one Line and touched
/// only by that line's sequential thread of control — the single-caller
/// contract of DESIGN.md §15/§16 — so guarding it would buy nothing.
/// Cross-thread sharing happens one level down, in the LineBudget the
/// line's stubs share, whose counters are atomics for exactly that
/// reason.
struct BindingCache {
  std::string address;        ///< empty = unbound
  std::string resolved_name;  ///< exporter-cased name
  obs::Counter lookups;       ///< Manager queries performed
  obs::Counter stale_retries; ///< calls that hit a moved procedure
  /// Compiled marshal programs for the import signature, filled on the
  /// first call (or eagerly by RemoteProc) and reused for every
  /// steady-state call — the §4.1 stub-compiler specialization.
  std::shared_ptr<const uts::MarshalPlan> request_plan;
  std::shared_ptr<const uts::MarshalPlan> reply_plan;
};

// --- The fault-tolerant call surface ----------------------------------------
//
// The original API threw transport exceptions out of the bowels of the
// stack; the redesigned surface makes failure typed and first-class:
// callers pass CallOptions (deadline, retry budget, backoff, failover
// target) and receive a CallResult (util::Status + values + a per-attempt
// trace). The legacy throwing signatures remain as thin shims over the
// same engine during migration.

/// Exponential retry backoff. The jitter draw is deterministic: it is
/// derived (hashed) from the caller's virtual clock and the attempt
/// number, so a seeded simulation replays the identical schedule.
struct BackoffPolicy {
  util::SimTime initial_us = 1000;  ///< first retry delay (0 = no backoff)
  double multiplier = 2.0;
  util::SimTime max_us = 250000;
  double jitter = 0.25;             ///< +- fraction of the delay
};

/// Per-line fault budget — the isolation half of the multi-tenant session
/// layer (DESIGN.md §15). One LineBudget is shared by every stub on a
/// Line; CallCore::invoke charges it, so a line whose peer dies or whose
/// deadline storms retries burns through *its own* budget and starts
/// failing fast (kBudgetExhausted) instead of holding transport slots and
/// Manager attention its neighbors need. All counters are atomics: stubs
/// on one line may call from different threads.
class LineBudget {
 public:
  struct Limits {
    /// Total virtual time the line may spend inside calls (all calls
    /// summed, backoff and timeout waits included). 0 = unlimited.
    util::SimTime virtual_us = 0;
    /// Retry attempts (2nd+ attempts of any call) the line may spend.
    /// 0 = unlimited.
    long retries = 0;
    /// Concurrent in-flight calls. 0 = unlimited. The Manager's per-line
    /// quota (kLineAck.n) is folded in at admission; the smaller cap wins.
    int outstanding = 0;
  };

  LineBudget() = default;
  explicit LineBudget(Limits limits) : limits_(limits) {}

  const Limits& limits() const { return limits_; }

  /// Fold the Manager-granted outstanding-call quota into the cap
  /// (smaller wins; <=0 leaves the cap unchanged). Called once at line
  /// admission, before the line carries traffic.
  void restrict_outstanding(int cap) {
    if (cap <= 0) return;
    if (limits_.outstanding == 0 || cap < limits_.outstanding) {
      limits_.outstanding = cap;
    }
  }

  /// Reserve an in-flight call slot; false when the cap is reached.
  bool try_begin_call() {
    if (limits_.outstanding == 0) {
      outstanding_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    int cur = outstanding_.load(std::memory_order_relaxed);
    while (cur < limits_.outstanding) {
      if (outstanding_.compare_exchange_weak(cur, cur + 1,
                                             std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }
  void end_call() { outstanding_.fetch_sub(1, std::memory_order_relaxed); }

  /// Spend one retry; false when the retry budget is already gone.
  bool charge_retry() {
    if (limits_.retries == 0) return true;
    long cur = retries_.load(std::memory_order_relaxed);
    while (cur < limits_.retries) {
      if (retries_.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void charge_virtual(util::SimTime us) {
    if (us > 0) virtual_spent_.fetch_add(us, std::memory_order_relaxed);
  }

  /// True once the virtual-time budget is spent (retry and outstanding
  /// limits gate their own operations and are not reflected here).
  bool virtual_exhausted() const {
    return limits_.virtual_us > 0 &&
           virtual_spent_.load(std::memory_order_relaxed) >= limits_.virtual_us;
  }

  int outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }
  long retries_spent() const {
    return retries_.load(std::memory_order_relaxed);
  }
  util::SimTime virtual_spent() const {
    return virtual_spent_.load(std::memory_order_relaxed);
  }

 private:
  Limits limits_;
  std::atomic<int> outstanding_{0};
  std::atomic<long> retries_{0};
  std::atomic<util::SimTime> virtual_spent_{0};
};

struct CallOptions {
  /// Total virtual-time budget for the call, binding and retries
  /// included. 0 = no deadline: every transport wait blocks forever, as
  /// the pre-fault-tolerance runtime did.
  util::SimTime deadline_us = 0;
  /// Per-attempt virtual budget; 0 splits the remaining deadline evenly
  /// over the remaining attempts.
  util::SimTime attempt_timeout_us = 0;
  /// Attempts in total (first try included). The engine always re-tries
  /// dead-address and stale-binding failures (the request never ran);
  /// *timeouts* are ambiguous and re-tried only when `idempotent`.
  int max_attempts = 2;
  BackoffPolicy backoff;
  /// The request may safely execute more than once; allows retry after a
  /// timeout, when the first send might have been served already.
  bool idempotent = false;
  /// When set and every attempt found the procedure's process dead, ask
  /// the Manager to sch_move the procedure to this machine and try once
  /// more — migration-based failover (§4.2's extension turned recovery).
  std::string failover_machine;
  /// Host-time wait per transport exchange used to *detect* lost frames;
  /// only meaningful when deadline_us > 0. Virtual-time accounting stays
  /// deterministic regardless of this value.
  int host_grace_ms = 50;
  /// The owning line's shared fault budget; charged by CallCore::invoke.
  /// Empty = unbudgeted (legacy clients, manager-internal calls). Set
  /// automatically on every stub created through rpc::Line.
  std::shared_ptr<LineBudget> line_budget;

  /// The shim options reproducing the legacy throwing call exactly:
  /// no deadline, one stale/dead-address retry, no backoff sleep.
  static CallOptions legacy();
};

/// One attempt's outcome in the CallResult trace.
struct CallAttempt {
  int number = 1;             ///< 1-based
  std::string address;        ///< binding the attempt was sent to
  util::Status status;
  util::SimTime backoff_us = 0;  ///< backoff slept before this attempt
  util::SimTime virtual_us = 0;  ///< virtual time the attempt consumed
};

/// What a call produced: a Status instead of a throw, the values on
/// success, and the per-attempt trace for diagnostics and tests.
struct CallResult {
  util::Status status;
  /// Import-signature-parallel slots; valid only when ok(). val slots
  /// keep the caller's arguments, res/var slots carry results.
  uts::ValueList values;
  std::vector<CallAttempt> attempts;
  bool failed_over = false;      ///< migration-based failover was used
  util::SimTime virtual_us = 0;  ///< total virtual time of the call

  bool ok() const { return status.is_ok(); }
  int attempt_count() const { return static_cast<int>(attempts.size()); }

  /// Legacy bridge: the values on success, or the status re-raised as
  /// its original Error subclass.
  uts::ValueList& values_or_raise() {
    status.raise_if_error();
    return values;
  }
};

/// Poll a Manager replica group for the current leader (kMetaWhoIsLeader).
/// Returns the leader address, or "" when no replica named one within
/// `rounds` polls (each round visits every replica, then sleeps ~20ms of
/// host time — elections settle within a few election timeouts).
std::string discover_manager_leader(MessageIo& io,
                                    const std::vector<std::string>& replicas,
                                    int rounds = 50);

struct CallCore {
  MessageIo* io = nullptr;
  /// Current Manager (leader) address. Mutable: when the leader dies the
  /// const call paths rediscover and re-point mid-flight.
  mutable std::string manager;
  /// Every Manager replica address; empty = classic standalone Manager
  /// (a dead Manager is then terminal, as before).
  std::vector<std::string> manager_replicas;
  LineId line = kNoLine;
  const arch::ArchDescriptor* arch = nullptr;
  /// Bills simulated marshal CPU time (may be empty).
  std::function<void(double)> compute;
  /// The caller's virtual clock; when set, per-call simulated latency is
  /// recorded into the rpc.client.virtual_latency_us histogram.
  const util::VirtualClock* clock = nullptr;
  /// Virtual-time sleep billed for backoff waits and timed-out transport
  /// waits (may be empty; typically advances the caller's clock).
  std::function<void(util::SimTime)> sleep;

  /// The one call engine. Resolves `name` through the Manager (filling
  /// `cache`), marshals once, then drives the attempt loop: deadline
  /// enforcement at the transport wait, stale-binding rebind, exponential
  /// backoff, and migration-based failover per `opts`. Never throws for
  /// transport or peer failures — they come back as CallResult.status.
  CallResult invoke(const std::string& name, const uts::ProcDecl& import_decl,
                    const std::string& import_text, uts::ValueList args,
                    BindingCache& cache, const CallOptions& opts) const;

  /// Asynchronous variant of the same engine: runs invoke() on a worker
  /// so independent remote evaluations overlap on the wire. The CallCore
  /// is captured by value; `cache` must outlive the future. One in-flight
  /// call per MessageIo endpoint: callers overlap calls across *different*
  /// lines/clients (each placed component owns its own), never on one —
  /// reply sequence matching on a shared endpoint is single-caller.
  std::future<CallResult> invoke_async(const std::string& name,
                                       const uts::ProcDecl& import_decl,
                                       const std::string& import_text,
                                       uts::ValueList args, BindingCache& cache,
                                       const CallOptions& opts) const;

  /// Legacy throwing shim over invoke(..., CallOptions::legacy()).
  [[deprecated(
      "use invoke(..., CallOptions) and branch on CallResult.status")]]
  uts::ValueList invoke(const std::string& name,
                        const uts::ProcDecl& import_decl,
                        const std::string& import_text, uts::ValueList args,
                        BindingCache& cache) const;

  /// Legacy throwing async shim.
  [[deprecated(
      "use invoke_async(..., CallOptions); get() yields a CallResult")]]
  std::future<uts::ValueList> invoke_async(const std::string& name,
                                           const uts::ProcDecl& import_decl,
                                           const std::string& import_text,
                                           uts::ValueList args,
                                           BindingCache& cache) const;

  /// Just the bind step (used by benches isolating lookup cost). With
  /// `host_grace_ms` > 0 the Manager exchange is deadline-bounded. When
  /// `manager_replicas` is set, a dead or deposed Manager triggers leader
  /// rediscovery and a retry instead of failing the bind.
  void bind(const std::string& name, const std::string& import_text,
            BindingCache& cache, int host_grace_ms = 0) const;

 private:
  /// Re-point `manager` at the group's current leader. Returns false when
  /// no replica list is configured or no leader surfaced.
  bool rediscover_manager() const;
};

}  // namespace npss::rpc
