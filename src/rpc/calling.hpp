// The client-side call core shared by SchoonerClient stubs and nested
// server-side calls: bind (Manager lookup with type check), marshal through
// the caller's native formats, invoke, and recover from stale bindings by
// re-querying the Manager — the §4.2 cache-update path used after a
// procedure migrates.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "rpc/io.hpp"
#include "rpc/message.hpp"
#include "util/clock.hpp"
#include "uts/canonical.hpp"
#include "uts/marshal_plan.hpp"
#include "uts/spec.hpp"

namespace npss::rpc {

/// Simulated marshaling cost billed per canonical byte (at reference-CPU
/// speed); both client and host runtimes charge it.
constexpr double kMarshalUsPerByte = 0.02;

/// Per-importer cached binding ("procedure name caches within each
/// procedure in the line", §4.2). The per-stub metrics are obs counters;
/// process-wide aggregates of the same events land in the global
/// obs::Registry under rpc.client.*.
struct BindingCache {
  std::string address;        ///< empty = unbound
  std::string resolved_name;  ///< exporter-cased name
  obs::Counter lookups;       ///< Manager queries performed
  obs::Counter stale_retries; ///< calls that hit a moved procedure
  /// Compiled marshal programs for the import signature, filled on the
  /// first call (or eagerly by RemoteProc) and reused for every
  /// steady-state call — the §4.1 stub-compiler specialization.
  std::shared_ptr<const uts::MarshalPlan> request_plan;
  std::shared_ptr<const uts::MarshalPlan> reply_plan;
};

struct CallCore {
  MessageIo* io = nullptr;
  std::string manager;
  LineId line = kNoLine;
  const arch::ArchDescriptor* arch = nullptr;
  /// Bills simulated marshal CPU time (may be empty).
  std::function<void(double)> compute;
  /// The caller's virtual clock; when set, per-call simulated latency is
  /// recorded into the rpc.client.virtual_latency_us histogram.
  const util::VirtualClock* clock = nullptr;

  /// Resolve `name` through the Manager (filling `cache`), then perform
  /// one call. On a stale binding the cache is refreshed and the call
  /// retried once. Returns the full import-signature-parallel value list:
  /// val slots keep the caller's arguments, res/var slots carry results.
  uts::ValueList invoke(const std::string& name,
                        const uts::ProcDecl& import_decl,
                        const std::string& import_text, uts::ValueList args,
                        BindingCache& cache) const;

  /// Asynchronous call seam: runs invoke() on a detached worker so
  /// independent remote evaluations overlap on the wire. The CallCore is
  /// captured by value; `cache` must outlive the future. One in-flight
  /// call per MessageIo endpoint: callers overlap calls across *different*
  /// lines/clients (each placed component owns its own), never on one —
  /// reply sequence matching on a shared endpoint is single-caller.
  std::future<uts::ValueList> invoke_async(const std::string& name,
                                           const uts::ProcDecl& import_decl,
                                           const std::string& import_text,
                                           uts::ValueList args,
                                           BindingCache& cache) const;

  /// Just the bind step (used by benches isolating lookup cost).
  void bind(const std::string& name, const std::string& import_text,
            BindingCache& cache) const;
};

}  // namespace npss::rpc
