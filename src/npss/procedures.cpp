#include "npss/procedures.hpp"

#include "tess/components.hpp"
#include "tess/remote_seam.hpp"
#include "uts/spec.hpp"

namespace npss::glue {

using rpc::ProcCall;
using tess::StationArray;
using uts::Value;

// The shaft export specification, verbatim from §3.3 of the paper.
const char* kShaftSpec = R"(
export setshaft prog(
    "ecom" val array[4] of float,
    "incom" val integer,
    "etur" val array[4] of float,
    "intur" val integer,
    "ecorr" res float)

export shaft prog(
    "ecom" val array[4] of float,
    "incom" val integer,
    "etur" val array[4] of float,
    "intur" val integer,
    "ecorr" val float,
    "xspool" val float,
    "xmyi" val float,
    "dxspl" res float)
)";

const char* kDuctSpec = R"(
export duct prog(
    "stin" val array[4] of float,
    "dp" val float,
    "stout" res array[4] of float)
)";

const char* kCombustorSpec = R"(
export combustor prog(
    "stin" val array[4] of float,
    "wfuel" val float,
    "effb" val float,
    "dp" val float,
    "stout" res array[4] of float)
)";

const char* kNozzleSpec = R"(
export nozzle prog(
    "stin" val array[4] of float,
    "area" val float,
    "pamb" val float,
    "result" res array[4] of float)
)";

namespace {

std::string to_import(const char* export_text) {
  return uts::export_to_import_text(uts::parse_spec(export_text));
}

StationArray station_arg(const ProcCall& call, std::string_view name) {
  std::vector<double> v = call.arg(name).as_real_vector();
  return {v[0], v[1], v[2], v[3]};
}

Value station_value(const StationArray& a) {
  return Value::real_array({a[0], a[1], a[2], a[3]});
}

}  // namespace

std::string shaft_import_spec() { return to_import(kShaftSpec); }
std::string duct_import_spec() { return to_import(kDuctSpec); }
std::string combustor_import_spec() { return to_import(kCombustorSpec); }
std::string nozzle_import_spec() { return to_import(kNozzleSpec); }

sim::ProgramImage shaft_image(double compute_us) {
  rpc::ProcedureImageOptions opt;
  opt.language = rpc::SourceLanguage::kFortran;
  opt.compute_us_per_call = compute_us;
  return rpc::make_procedure_image(
      kShaftSpec,
      {{"setshaft",
        [](ProcCall& call) {
          StationArray ecom = station_arg(call, "ecom");
          StationArray etur = station_arg(call, "etur");
          call.set_real("ecorr",
                        tess::setshaft(ecom.data(),
                                       static_cast<int>(call.integer("incom")),
                                       etur.data(),
                                       static_cast<int>(call.integer("intur"))));
        }},
       {"shaft",
        [](ProcCall& call) {
          StationArray ecom = station_arg(call, "ecom");
          StationArray etur = station_arg(call, "etur");
          call.set_real(
              "dxspl",
              tess::shaft(ecom.data(),
                          static_cast<int>(call.integer("incom")),
                          etur.data(),
                          static_cast<int>(call.integer("intur")),
                          call.real("ecorr"), call.real("xspool"),
                          call.real("xmyi")));
        }}},
      opt);
}

sim::ProgramImage duct_image(double compute_us) {
  rpc::ProcedureImageOptions opt;
  opt.language = rpc::SourceLanguage::kFortran;
  opt.compute_us_per_call = compute_us;
  return rpc::make_procedure_image(
      kDuctSpec, {{"duct", [](ProcCall& call) {
                     tess::GasState out = tess::duct(
                         tess::from_array(station_arg(call, "stin")),
                         call.real("dp"));
                     call.set("stout", station_value(tess::to_array(out)));
                   }}},
      opt);
}

sim::ProgramImage combustor_image(double compute_us) {
  rpc::ProcedureImageOptions opt;
  opt.language = rpc::SourceLanguage::kFortran;
  opt.compute_us_per_call = compute_us;
  return rpc::make_procedure_image(
      kCombustorSpec,
      {{"combustor", [](ProcCall& call) {
          tess::CombustorResult r = tess::combustor(
              tess::from_array(station_arg(call, "stin")),
              call.real("wfuel"), call.real("effb"), call.real("dp"));
          call.set("stout", station_value(tess::to_array(r.out)));
        }}},
      opt);
}

sim::ProgramImage nozzle_image(double compute_us) {
  rpc::ProcedureImageOptions opt;
  opt.language = rpc::SourceLanguage::kFortran;
  opt.compute_us_per_call = compute_us;
  return rpc::make_procedure_image(
      kNozzleSpec, {{"nozzle", [](ProcCall& call) {
                       tess::NozzleResult r = tess::nozzle(
                           tess::from_array(station_arg(call, "stin")),
                           call.real("area"), call.real("pamb"));
                       call.set("result",
                                Value::real_array({r.w_required, r.thrust,
                                                   r.exit_velocity,
                                                   r.choked ? 1.0 : 0.0}));
                     }}},
      opt);
}

sim::ProgramImage hifi_duct_image(tess::HifiDuctConfig config,
                                  double compute_us) {
  rpc::ProcedureImageOptions opt;
  opt.language = rpc::SourceLanguage::kFortran;
  opt.compute_us_per_call = compute_us;
  return rpc::make_procedure_image(
      kDuctSpec,
      {{"duct", [config](ProcCall& call) {
          // Same interface as the level-1 duct; the dp argument is
          // superseded by the level-2 physics.
          tess::HifiDuctResult r = tess::hifi_duct(
              tess::from_array(station_arg(call, "stin")), config);
          call.set("stout", station_value(tess::to_array(r.out)));
        }}},
      opt);
}

void install_tess_procedures(sim::Cluster& cluster,
                             const std::string& machine) {
  cluster.install_image(machine, kShaftPath, shaft_image());
  cluster.install_image(machine, kDuctPath, duct_image());
  cluster.install_image(machine, kHifiDuctPath, hifi_duct_image());
  cluster.install_image(machine, kCombustorPath, combustor_image());
  cluster.install_image(machine, kNozzlePath, nozzle_image());
}

void install_tess_procedures_everywhere(sim::Cluster& cluster) {
  for (const std::string& machine : cluster.machine_names()) {
    install_tess_procedures(cluster, machine);
  }
}

}  // namespace npss::glue
