// The Figure 2 network: a builder assembling the F100 engine model in a
// flow::Network from TESS modules, and the engine driver that balances and
// flies it by iterating network evaluations — the role the TESS system
// module plays inside the prototype executive.
#pragma once

#include <string>
#include <vector>

#include "flow/network.hpp"
#include "npss/modules.hpp"

namespace npss::glue {

/// Instance names of the F100 network's modules.
struct F100NetworkNames {
  std::string system = "system";
  std::string inlet = "inlet";
  std::string fan = "fan";
  std::string splitter = "splitter";
  std::string bleed = "bleed";
  std::string hpc = "hpc";
  std::string burner = "burner";
  std::string hpt = "hpt";
  std::string lpt = "lpt";
  std::string bypass_duct = "bypass-duct";
  std::string mixer = "mixer";
  std::string tailpipe = "tailpipe";
  std::string nozzle = "nozzle";
  std::string lp_shaft = "lp-shaft";
  std::string hp_shaft = "hp-shaft";
};

/// Build the F100 engine network (Figure 2) into `net`; the network must
/// be empty. Registers the TESS module types first.
F100NetworkNames build_f100_network(flow::Network& net,
                                    F100NetworkNames names = {});

struct NetworkSteadyResult {
  std::vector<double> speeds;  ///< {LP, HP} rpm
  double thrust = 0.0;
  double t4 = 0.0;
  int iterations = 0;
};

struct NetworkTransientSample {
  double t = 0.0;
  std::vector<double> speeds;
  double thrust = 0.0;
  double t4 = 0.0;
};

/// Drives an F100 network: the balancing/transient logic the TESS system
/// module performs, expressed as repeated network evaluations.
class NetworkEngineDriver {
 public:
  NetworkEngineDriver(flow::Network& net, F100NetworkNames names = {});

  /// Loosen solver tolerances (needed when adapted modules run remotely:
  /// their values cross the wire as UTS single floats).
  void set_tolerances(double flow_tol, double balance_tol) {
    flow_tolerance_ = flow_tol;
    balance_tolerance_ = balance_tol;
  }

  /// One thermodynamic evaluation at the current shaft speeds and the
  /// given fuel flow: solves the flow-match unknowns by Newton over
  /// repeated network evaluations. Returns spool accelerations.
  std::vector<double> evaluate_flow(double fuel_flow);

  /// Steady-state balance at `fuel_flow`, honoring the system module's
  /// steady-method widget.
  NetworkSteadyResult balance(double fuel_flow);

  /// Transient under a fuel schedule, honoring the transient-method
  /// widget; starts from the network's current shaft speeds.
  std::vector<NetworkTransientSample> run_transient(
      const tess::FuelSchedule& schedule, double t_end, double dt);

  /// Convenience: run the transient configured on the system module's
  /// widgets (fuel-flow step, transient-seconds, time-step).
  std::vector<NetworkTransientSample> run_configured_transient();

  double current_thrust() const;
  double current_t4() const;
  std::vector<double> current_speeds() const;
  void set_speeds(const std::vector<double>& speeds);

  SystemModule& system();
  ShaftModule& lp_shaft();
  ShaftModule& hp_shaft();

 private:
  flow::Network* net_;
  F100NetworkNames names_;
  std::vector<double> warm_start_;
  double flow_tolerance_ = 1e-9;
  double balance_tolerance_ = 1e-7;
};

}  // namespace npss::glue
