#include "npss/network_driver.hpp"

#include <cmath>

#include "check/flowlint.hpp"
#include "obs/metrics.hpp"
#include "solvers/newton.hpp"
#include "solvers/ode.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

namespace npss::glue {

namespace {

void record_driver_iterations(const char* name, double iterations) {
  if (!obs::enabled()) return;
  obs::Registry::global()
      .histogram(std::string("npss.driver.") + name,
                 obs::default_iteration_bounds())
      .record(iterations);
}

}  // namespace

F100NetworkNames build_f100_network(flow::Network& net,
                                    F100NetworkNames names) {
  register_tess_modules();

  net.add(names.system, "tess-system");
  net.add(names.inlet, "tess-inlet");
  net.add(names.lp_shaft, "tess-shaft");
  net.add(names.hp_shaft, "tess-shaft");
  net.add(names.fan, "tess-compressor");
  net.add(names.splitter, "tess-splitter");
  net.add(names.bleed, "tess-bleed");
  net.add(names.hpc, "tess-compressor");
  net.add(names.burner, "tess-combustor");
  net.add(names.hpt, "tess-turbine");
  net.add(names.lpt, "tess-turbine");
  net.add(names.bypass_duct, "tess-duct");
  net.add(names.mixer, "tess-mixer");
  net.add(names.tailpipe, "tess-duct");
  net.add(names.nozzle, "tess-nozzle");

  // Widget setup matching the F100Config defaults.
  flow::Module& inlet = net.module(names.inlet);
  inlet.widget("W").set_real(102.0);

  flow::Module& fan = net.module(names.fan);
  fan.widget("map").set_text("f100_fan.map");
  fan.widget("design-speed").set_real(10400.0);
  fan.widget("shaft").set_text(names.lp_shaft);

  flow::Module& hpc = net.module(names.hpc);
  hpc.widget("map").set_text("f100_hpc.map");
  hpc.widget("design-speed").set_real(13450.0);
  hpc.widget("shaft").set_text(names.hp_shaft);

  net.module(names.bleed).widget("fraction").set_real(0.05);
  net.module(names.burner).widget("dp").set_real(0.05);

  flow::Module& hpt = net.module(names.hpt);
  hpt.widget("map").set_text("f100_hpt.map");
  hpt.widget("design-speed").set_real(13450.0);
  hpt.widget("shaft").set_text(names.hp_shaft);
  hpt.widget("pr").set_real(3.1);

  flow::Module& lpt = net.module(names.lpt);
  lpt.widget("map").set_text("f100_lpt.map");
  lpt.widget("design-speed").set_real(10400.0);
  lpt.widget("shaft").set_text(names.lp_shaft);
  lpt.widget("pr").set_real(2.3);

  net.module(names.bypass_duct).widget("dp").set_real(0.03);
  net.module(names.mixer).widget("dp").set_real(0.02);
  net.module(names.tailpipe).widget("dp").set_real(0.01);

  flow::Module& nozzle = net.module(names.nozzle);
  nozzle.widget("area").set_real(0.23);
  nozzle.widget("pamb").set_real(tess::kPref);

  flow::Module& lp = net.module(names.lp_shaft);
  lp.widget("moment-inertia").set_real(40.0);
  lp.widget("spool-speed").set_real(10400.0);
  lp.widget("spool-speed-op").set_real(10400.0);

  flow::Module& hp = net.module(names.hp_shaft);
  hp.widget("moment-inertia").set_real(25.0);
  hp.widget("spool-speed").set_real(13450.0);
  hp.widget("spool-speed-op").set_real(13450.0);

  // The airflow through the engine (Figure 2).
  net.connect(names.inlet, "out", names.fan, "in");
  net.connect(names.fan, "out", names.splitter, "in");
  net.connect(names.splitter, "core", names.bleed, "in");
  net.connect(names.bleed, "out", names.hpc, "in");
  net.connect(names.hpc, "out", names.burner, "in");
  net.connect(names.burner, "out", names.hpt, "in");
  net.connect(names.hpt, "out", names.lpt, "in");
  net.connect(names.lpt, "out", names.mixer, "core");
  net.connect(names.splitter, "bypass", names.bypass_duct, "in");
  net.connect(names.bypass_duct, "out", names.mixer, "bypass");
  net.connect(names.mixer, "out", names.tailpipe, "in");
  net.connect(names.tailpipe, "out", names.nozzle, "in");
  // Energy terms into the shafts (the shaft receives data from the
  // upstream compressor, as the paper describes for Figure 2).
  net.connect(names.fan, "ecom", names.lp_shaft, "ecom");
  net.connect(names.lpt, "etur", names.lp_shaft, "etur");
  net.connect(names.hpc, "ecom", names.hp_shaft, "ecom");
  net.connect(names.hpt, "etur", names.hp_shaft, "etur");

  return names;
}

NetworkEngineDriver::NetworkEngineDriver(flow::Network& net,
                                         F100NetworkNames names)
    : net_(&net), names_(std::move(names)) {
  // Engine-config lint at startup: run flow_lint's static pass over the
  // serialized form of the network we were handed. Warnings (serialization
  // hazards, isolated modules) are logged; hard findings (dangling ports,
  // type mismatches, undeclared cycles) abort before the first evaluate,
  // with positions into the serialized text.
  check::FlowLintResult lint = check::lint_network_text(
      "<engine-network>", net.save_to_text(), check::ModuleCatalog::from_factory());
  for (const check::Diagnostic& d : lint.diags) {
    if (d.severity == check::Severity::kWarning) {
      NPSS_LOG_WARN("npss.driver", "flow-lint: ", check::to_string(d));
    }
  }
  if (!lint.ok()) {
    std::string msg = "engine network failed flow-lint:";
    for (const check::Diagnostic& d : lint.diags) {
      if (d.severity == check::Severity::kError) {
        msg += "\n  " + check::to_string(d);
      }
    }
    throw util::GraphError(msg);
  }
}

SystemModule& NetworkEngineDriver::system() {
  return dynamic_cast<SystemModule&>(net_->module(names_.system));
}

ShaftModule& NetworkEngineDriver::lp_shaft() {
  return dynamic_cast<ShaftModule&>(net_->module(names_.lp_shaft));
}

ShaftModule& NetworkEngineDriver::hp_shaft() {
  return dynamic_cast<ShaftModule&>(net_->module(names_.hp_shaft));
}

double NetworkEngineDriver::current_thrust() const {
  const flow::Module& nozzle = net_->module(names_.nozzle);
  const flow::Module& inlet = net_->module(names_.inlet);
  double ram = 0.0;
  if (inlet.outputs()[1].value) ram = inlet.outputs()[1].value->as_real();
  double gross = 0.0;
  for (const flow::OutputPort& p : nozzle.outputs()) {
    if (p.name == "thrust" && p.value) gross = p.value->as_real();
  }
  return gross - ram;
}

double NetworkEngineDriver::current_t4() const {
  const flow::Module& burner = net_->module(names_.burner);
  for (const flow::OutputPort& p : burner.outputs()) {
    if (p.name == "out" && p.value) {
      return station_from_value(*p.value).Tt;
    }
  }
  return 0.0;
}

std::vector<double> NetworkEngineDriver::current_speeds() const {
  auto& self = const_cast<NetworkEngineDriver&>(*this);
  return {self.lp_shaft().speed(), self.hp_shaft().speed()};
}

void NetworkEngineDriver::set_speeds(const std::vector<double>& speeds) {
  lp_shaft().set_speed(speeds[0]);
  hp_shaft().set_speed(speeds[1]);
}

std::vector<double> NetworkEngineDriver::evaluate_flow(double fuel_flow) {
  net_->module(names_.burner).widget("wfuel").set_real(fuel_flow);

  const double w_design =
      tess::compressor_map(net_->module(names_.fan).widget("map").text())
          .design_corrected_flow();
  flow::Module& inlet = net_->module(names_.inlet);
  flow::Module& splitter = net_->module(names_.splitter);
  flow::Module& hpt = net_->module(names_.hpt);
  flow::Module& lpt = net_->module(names_.lpt);

  auto read_real = [&](const std::string& module,
                       const std::string& port) {
    for (const flow::OutputPort& p : net_->module(module).outputs()) {
      if (p.name == port && p.value) return p.value->as_real();
    }
    throw util::GraphError("no value on " + module + "." + port);
  };

  auto residual = [&](const std::vector<double>& u) {
    inlet.widget("W").set_real(std::clamp(u[0], 0.05, 3.0) * w_design);
    splitter.widget("bpr").set_real(std::clamp(u[1], 0.02, 8.0) * 0.7);
    hpt.widget("pr").set_real(std::clamp(u[2], 0.3, 2.5) * 3.1);
    lpt.widget("pr").set_real(std::clamp(u[3], 0.3, 2.5) * 2.3);
    net_->evaluate();
    return std::vector<double>{
        read_real(names_.hpt, "flow-error"),
        read_real(names_.lpt, "flow-error"),
        read_real(names_.mixer, "p-imbalance"),
        read_real(names_.nozzle, "w-error"),
    };
  };

  if (warm_start_.empty()) warm_start_ = {1.0, 1.0, 1.0, 1.0};
  solvers::NewtonOptions opt;
  opt.tolerance = flow_tolerance_;
  opt.max_iterations = 100;
  solvers::NewtonResult nr =
      solvers::newton_solve(residual, warm_start_, opt);
  warm_start_ = nr.solution;
  residual(nr.solution);

  record_driver_iterations("flow_newton_iterations", nr.iterations);
  if (obs::enabled()) {
    obs::Registry::global().counter("npss.driver.flow_evaluations").add();
  }
  return {read_real(names_.lp_shaft, "accel"),
          read_real(names_.hp_shaft, "accel")};
}

NetworkSteadyResult NetworkEngineDriver::balance(double fuel_flow) {
  lp_shaft().clear_setshaft();
  hp_shaft().clear_setshaft();
  const std::vector<double> design = {
      net_->module(names_.fan).widget("design-speed").real(),
      net_->module(names_.hpc).widget("design-speed").real()};

  NetworkSteadyResult result;
  if (system().steady_method() == tess::SteadyMethod::kNewtonRaphson) {
    auto residual = [&](const std::vector<double>& x) {
      set_speeds({x[0] * design[0], x[1] * design[1]});
      std::vector<double> accel = evaluate_flow(fuel_flow);
      return std::vector<double>{accel[0] / 1000.0, accel[1] / 1000.0};
    };
    solvers::NewtonOptions opt;
    opt.tolerance = balance_tolerance_;
    opt.max_iterations = 60;
    solvers::NewtonResult nr =
        solvers::newton_solve(residual, {1.0, 1.0}, opt);
    set_speeds({nr.solution[0] * design[0], nr.solution[1] * design[1]});
    evaluate_flow(fuel_flow);
    result.iterations = nr.iterations;
  } else {
    // RK4 pseudo-transient march.
    auto integrator =
        solvers::make_integrator(solvers::IntegratorKind::kRungeKutta4);
    std::vector<double> speeds = design;
    int steps = 0;
    while (steps < 20000) {
      set_speeds(speeds);
      std::vector<double> accel = evaluate_flow(fuel_flow);
      if (std::max(std::abs(accel[0]), std::abs(accel[1])) < 0.5) break;
      solvers::OdeFn rhs = [&](double, const std::vector<double>& y) {
        set_speeds(y);
        return evaluate_flow(fuel_flow);
      };
      speeds = integrator->step(rhs, steps * 0.05, speeds, 0.05);
      ++steps;
    }
    if (steps >= 20000) {
      throw util::ConvergenceError("network RK4 march did not settle");
    }
    result.iterations = steps;
  }
  record_driver_iterations("balance_iterations", result.iterations);
  result.speeds = current_speeds();
  result.thrust = current_thrust();
  result.t4 = current_t4();
  return result;
}

std::vector<NetworkTransientSample> NetworkEngineDriver::run_transient(
    const tess::FuelSchedule& schedule, double t_end, double dt) {
  auto integrator = solvers::make_integrator(system().transient_method());
  std::vector<NetworkTransientSample> history;

  solvers::OdeFn rhs = [&](double t, const std::vector<double>& y) {
    set_speeds(y);
    return evaluate_flow(schedule(t));
  };
  std::vector<double> speeds = current_speeds();
  evaluate_flow(schedule(0.0));
  history.push_back(
      NetworkTransientSample{0.0, speeds, current_thrust(), current_t4()});
  double t = 0.0;
  while (t < t_end - 1e-12) {
    const double step = std::min(dt, t_end - t);
    speeds = integrator->step(rhs, t, speeds, step);
    t += step;
    set_speeds(speeds);
    evaluate_flow(schedule(t));
    if (obs::enabled()) {
      obs::Registry::global().counter("npss.driver.transient_steps").add();
    }
    history.push_back(
        NetworkTransientSample{t, speeds, current_thrust(), current_t4()});
  }
  return history;
}

std::vector<NetworkTransientSample>
NetworkEngineDriver::run_configured_transient() {
  SystemModule& sys = system();
  const double wf = sys.widget("fuel-flow").real();
  const double t_end = sys.widget("transient-seconds").real();
  const double dt = sys.widget("time-step").real();
  tess::FuelSchedule schedule = [wf](double) { return wf; };
  return run_transient(schedule, t_end, dt);
}

}  // namespace npss::glue
