#include "npss/runtime.hpp"

namespace npss::glue {

std::vector<std::string> NpssRuntime::machine_choices() const {
  std::vector<std::string> choices{kLocalMachine};
  if (cluster) {
    for (const std::string& m : cluster->machine_names()) {
      choices.push_back(m);
    }
  }
  return choices;
}

NpssRuntime& npss_runtime() {
  static NpssRuntime runtime;
  return runtime;
}

void configure_npss_runtime(sim::Cluster& cluster,
                            rpc::SchoonerSystem& schooner,
                            std::string avs_machine) {
  NpssRuntime& rt = npss_runtime();
  rt.cluster = &cluster;
  rt.schooner = &schooner;
  rt.avs_machine = std::move(avs_machine);
}

void clear_npss_runtime() {
  NpssRuntime& rt = npss_runtime();
  rt.cluster = nullptr;
  rt.schooner = nullptr;
  rt.avs_machine.clear();
  rt.call_options = rpc::CallOptions::legacy();
  rt.local_fallback = true;
}

}  // namespace npss::glue
