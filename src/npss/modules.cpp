#include "npss/modules.hpp"

#include <cmath>

#include "flow/network.hpp"
#include "npss/procedures.hpp"
#include "obs/metrics.hpp"
#include "tess/components.hpp"
#include "util/log.hpp"
#include "util/status.hpp"

namespace npss::glue {

using flow::ModuleSpec;
using tess::GasState;
using tess::StationArray;
using uts::Value;
using uts::ValueList;

const uts::Type& station_type() {
  static const uts::Type type = uts::Type::record({
      {"W", uts::Type::real_double()},
      {"Tt", uts::Type::real_double()},
      {"Pt", uts::Type::real_double()},
      {"FAR", uts::Type::real_double()},
  });
  return type;
}

const uts::Type& energy_type() {
  static const uts::Type type =
      uts::Type::array(4, uts::Type::real_double());
  return type;
}

uts::Value station_to_value(const GasState& s) {
  return Value::record({Value::real(s.W), Value::real(s.Tt),
                        Value::real(s.Pt), Value::real(s.far)});
}

GasState station_from_value(const Value& v) {
  const ValueList& f = v.items();
  return GasState{f[0].as_real(), f[1].as_real(), f[2].as_real(),
                  f[3].as_real()};
}

uts::Value energy_to_value(const StationArray& a) {
  return Value::real_array({a[0], a[1], a[2], a[3]});
}

StationArray energy_from_value(const Value& v) {
  std::vector<double> r = v.as_real_vector();
  return {r[0], r[1], r[2], r[3]};
}

namespace {

/// Shaft lookup used by compressor and turbine modules: the spool a
/// turbomachine rides on is named by its "shaft" widget (TESS wired this
/// through the network; a name reference keeps the graph acyclic, as the
/// speed genuinely is state, not dataflow).
ShaftModule& shaft_by_name(flow::Module& self) {
  const std::string name = self.widget("shaft").text();
  if (!self.network() || !self.network()->has(name)) {
    throw util::GraphError("module '" + self.instance_name() +
                           "': no shaft module named '" + name + "'");
  }
  auto* shaft = dynamic_cast<ShaftModule*>(&self.network()->module(name));
  if (!shaft) {
    throw util::GraphError("module '" + name + "' is not a tess-shaft");
  }
  return *shaft;
}

Value station_wire_value(const StationArray& a) {
  return Value::real_array({a[0], a[1], a[2], a[3]});
}

StationArray station_wire_from(const Value& v) {
  std::vector<double> r = v.as_real_vector();
  return {r[0], r[1], r[2], r[3]};
}

}  // namespace

// --- AdaptedModule ---------------------------------------------------------------

bool AdaptedModule::remote() const {
  return widget("machine").text() != kLocalMachine;
}

void AdaptedModule::placement_widgets(ModuleSpec& spec,
                                      const std::string& default_path) {
  NpssRuntime& rt = npss_runtime();
  std::vector<std::string> choices =
      rt.configured() ? rt.machine_choices()
                      : std::vector<std::string>{kLocalMachine};
  spec.radio_buttons("machine", std::move(choices), kLocalMachine);
  spec.typein_string("path", default_path);
}

rpc::SchoonerClient& AdaptedModule::remote_client() {
  NpssRuntime& rt = npss_runtime();
  if (!rt.configured()) {
    throw util::ModelError("module '" + instance_name() +
                           "': NPSS runtime not configured for remote "
                           "computation");
  }
  const std::string machine = widget("machine").text();
  const std::string path = widget("path").text();
  const std::string key = machine + ":" + path;
  if (!client_ || contacted_machine_ != key) {
    if (client_) client_->quit();
    client_ = rt.schooner->make_client(rt.avs_machine, instance_name());
    client_->contact_schx(machine, path);
    bind_imports(*client_);
    contacted_machine_ = key;
  }
  return *client_;
}

bool AdaptedModule::remote_invoke(rpc::RemoteProc& proc, ValueList args,
                                  ValueList* out) {
  NpssRuntime& rt = npss_runtime();
  rpc::CallResult result = proc.call(std::move(args), rt.call_options);
  if (result.ok()) {
    *out = std::move(result.values);
    return true;
  }
  if (!rt.local_fallback) result.status.raise_if_error();
  degraded_ = true;
  NPSS_LOG_WARN("npss.glue", "module '", instance_name(),
                "' degraded to local compute: ", result.status.to_string(),
                " (", result.attempt_count(), " attempt(s))");
  if (obs::enabled()) {
    obs::Registry::global().counter("npss.remote.degraded_calls").add();
  }
  return false;
}

void AdaptedModule::destroy() {
  if (client_) {
    client_->quit();  // sch_i_quit: the Manager tears down only this line
    client_.reset();
    contacted_machine_.clear();
  }
}

// --- Inlet -----------------------------------------------------------------------

void InletModule::spec(ModuleSpec& spec) {
  spec.typein_real("altitude", 0.0);
  spec.typein_real("mach", 0.0);
  spec.typein_real("dT-isa", 0.0);
  spec.typein_real("W", 100.0);
  spec.output("out", station_type());
  spec.output("ram-drag", uts::Type::real_double());
}

void InletModule::compute() {
  tess::FlightCondition flight{widget("altitude").real(),
                               widget("mach").real(),
                               widget("dT-isa").real()};
  tess::InletResult r = tess::inlet(flight, widget("W").real());
  out("out", station_to_value(r.out));
  out_real("ram-drag", r.ram_drag);
}

// --- Compressor -------------------------------------------------------------------

void CompressorModule::spec(ModuleSpec& spec) {
  spec.browser("map", "f100_fan.map");
  spec.typein_real("design-speed", 10400.0);
  spec.typein_string("shaft", "shaft");
  spec.input("in", station_type());
  spec.output("out", station_type());
  spec.output("ecom", energy_type());
  spec.output("surge-margin", uts::Type::real_double());
  spec.output("power", uts::Type::real_double());
}

void CompressorModule::compute() {
  const GasState in_state = station_from_value(in("in"));
  const tess::CompressorMap& map =
      tess::compressor_map(widget("map").text());
  const double n = shaft_by_name(*this).speed();
  tess::CompressorResult r =
      tess::compressor(in_state, map, n, widget("design-speed").real());
  const double dh =
      tess::enthalpy(r.out.Tt, in_state.far) -
      tess::enthalpy(in_state.Tt, in_state.far);
  out("out", station_to_value(r.out));
  out("ecom", energy_to_value({r.power, in_state.W, dh, r.point.eff}));
  out_real("surge-margin", r.surge_margin);
  out_real("power", r.power);
}

// --- Splitter ---------------------------------------------------------------------

void SplitterModule::spec(ModuleSpec& spec) {
  spec.typein_real("bpr", 0.7);
  spec.input("in", station_type());
  spec.output("core", station_type());
  spec.output("bypass", station_type());
}

void SplitterModule::compute() {
  GasState in_state = station_from_value(in("in"));
  const double bpr = widget("bpr").real();
  GasState core = in_state;
  core.W = in_state.W / (1.0 + bpr);
  GasState bypass = in_state;
  bypass.W = in_state.W - core.W;
  out("core", station_to_value(core));
  out("bypass", station_to_value(bypass));
}

// --- Bleed ------------------------------------------------------------------------

void BleedModule::spec(ModuleSpec& spec) {
  spec.dial("fraction", 0.05, 0.0, 0.5);
  spec.input("in", station_type());
  spec.output("out", station_type());
  spec.output("bleed", station_type());
}

void BleedModule::compute() {
  tess::BleedResult r = tess::bleed(station_from_value(in("in")),
                                    widget("fraction").real());
  out("out", station_to_value(r.out));
  out("bleed", station_to_value(r.bleed));
}

// --- Turbine ----------------------------------------------------------------------

void TurbineModule::spec(ModuleSpec& spec) {
  spec.browser("map", "f100_hpt.map");
  spec.typein_real("design-speed", 13450.0);
  spec.typein_string("shaft", "shaft");
  spec.typein_real("pr", 3.0);
  spec.input("in", station_type());
  spec.output("out", station_type());
  spec.output("etur", energy_type());
  spec.output("flow-error", uts::Type::real_double());
}

void TurbineModule::compute() {
  const GasState in_state = station_from_value(in("in"));
  const tess::TurbineMap& map = tess::turbine_map(widget("map").text());
  const double n = shaft_by_name(*this).speed();
  tess::TurbineResult r = tess::turbine(in_state, map, widget("pr").real(),
                                        n, widget("design-speed").real());
  const double dh =
      tess::enthalpy(in_state.Tt, in_state.far) -
      tess::enthalpy(r.out.Tt, in_state.far);
  out("out", station_to_value(r.out));
  out("etur", energy_to_value({r.power, in_state.W, dh, r.point.eff}));
  out_real("flow-error",
           (in_state.W - r.flow_demand) / std::max(in_state.W, 1e-6));
}

// --- Mixer ------------------------------------------------------------------------

void MixerModule::spec(ModuleSpec& spec) {
  spec.typein_real("dp", 0.02);
  spec.input("core", station_type());
  spec.input("bypass", station_type());
  spec.output("out", station_type());
  spec.output("p-imbalance", uts::Type::real_double());
}

void MixerModule::compute() {
  tess::MixerResult r =
      tess::mix(station_from_value(in("core")),
                station_from_value(in("bypass")), widget("dp").real());
  out("out", station_to_value(r.out));
  out_real("p-imbalance", r.pressure_imbalance);
}

// --- Duct (adapted) -----------------------------------------------------------------

void DuctModule::spec(ModuleSpec& spec) {
  spec.typein_real("dp", 0.02);
  placement_widgets(spec, kDuctPath);
  spec.input("in", station_type());
  spec.output("out", station_type());
}

void DuctModule::bind_imports(rpc::SchoonerClient& client) {
  duct_ = client.import_proc("duct", duct_import_spec());
}

void DuctModule::compute() {
  const GasState in_state = station_from_value(in("in"));
  const double dp = widget("dp").real();
  if (!remote()) {
    out("out", station_to_value(tess::duct(in_state, dp)));
    return;
  }
  remote_client();
  ValueList reply;
  if (!remote_invoke(*duct_,
                     {station_wire_value(tess::to_array(in_state)),
                      Value::real(dp), Value::real_array({0, 0, 0, 0})},
                     &reply)) {
    out("out", station_to_value(tess::duct(in_state, dp)));
    return;
  }
  out("out",
      station_to_value(tess::from_array(station_wire_from(reply[2]))));
}

// --- Combustor (adapted) --------------------------------------------------------------

void CombustorModule::spec(ModuleSpec& spec) {
  spec.typein_real("wfuel", 1.27);
  spec.typein_real("eff", 0.985);
  spec.typein_real("dp", 0.05);
  // Transient control-schedule trim (§3.2's stator-angle schedules,
  // reduced to an efficiency trim knob for the level-1 model).
  spec.dial("trim", 1.0, 0.8, 1.2);
  placement_widgets(spec, kCombustorPath);
  spec.input("in", station_type());
  spec.output("out", station_type());
}

void CombustorModule::bind_imports(rpc::SchoonerClient& client) {
  combustor_ = client.import_proc("combustor", combustor_import_spec());
}

void CombustorModule::compute() {
  const GasState in_state = station_from_value(in("in"));
  const double wf = widget("wfuel").real();
  const double eff = widget("eff").real() * widget("trim").real();
  const double dp = widget("dp").real();
  if (!remote()) {
    out("out", station_to_value(tess::combustor(in_state, wf, eff, dp).out));
    return;
  }
  remote_client();
  ValueList reply;
  if (!remote_invoke(*combustor_,
                     {station_wire_value(tess::to_array(in_state)),
                      Value::real(wf), Value::real(eff), Value::real(dp),
                      Value::real_array({0, 0, 0, 0})},
                     &reply)) {
    out("out", station_to_value(tess::combustor(in_state, wf, eff, dp).out));
    return;
  }
  out("out",
      station_to_value(tess::from_array(station_wire_from(reply[4]))));
}

// --- Nozzle (adapted) ----------------------------------------------------------------

void NozzleModule::spec(ModuleSpec& spec) {
  spec.typein_real("area", 0.23);
  spec.typein_real("pamb", tess::kPref);
  placement_widgets(spec, kNozzlePath);
  spec.input("in", station_type());
  spec.output("w-error", uts::Type::real_double());
  spec.output("thrust", uts::Type::real_double());
}

void NozzleModule::bind_imports(rpc::SchoonerClient& client) {
  nozzle_ = client.import_proc("nozzle", nozzle_import_spec());
}

void NozzleModule::compute() {
  const GasState in_state = station_from_value(in("in"));
  const double area = widget("area").real();
  const double pamb = widget("pamb").real();
  double w_required = 0.0, thrust = 0.0;
  if (!remote()) {
    tess::NozzleResult r = tess::nozzle(in_state, area, pamb);
    w_required = r.w_required;
    thrust = r.thrust;
  } else {
    remote_client();
    ValueList reply;
    if (remote_invoke(*nozzle_,
                      {station_wire_value(tess::to_array(in_state)),
                       Value::real(area), Value::real(pamb),
                       Value::real_array({0, 0, 0, 0})},
                      &reply)) {
      StationArray r = station_wire_from(reply[3]);
      w_required = r[0];
      thrust = r[1];
    } else {
      tess::NozzleResult r = tess::nozzle(in_state, area, pamb);
      w_required = r.w_required;
      thrust = r.thrust;
    }
  }
  out_real("w-error",
           (in_state.W - w_required) / std::max(in_state.W, 1e-6));
  out_real("thrust", thrust);
}

// --- Shaft (adapted) ----------------------------------------------------------------

void ShaftModule::spec(ModuleSpec& spec) {
  // The paper's control panel: moment inertia, spool speed, spool
  // speed-op (Figure 2's low speed shaft panel).
  spec.typein_real("moment-inertia", 40.0);
  spec.typein_real("spool-speed", 10400.0);
  spec.typein_real("spool-speed-op", 10400.0);
  placement_widgets(spec, kShaftPath);
  spec.input("ecom", energy_type());
  spec.input("etur", energy_type());
  spec.output("accel", uts::Type::real_double());
  spec.output("speed", uts::Type::real_double());
}

void ShaftModule::bind_imports(rpc::SchoonerClient& client) {
  shaft_ = client.import_proc("shaft", shaft_import_spec());
  setshaft_ = client.import_proc("setshaft", shaft_import_spec());
}

void ShaftModule::run_setshaft() {
  const StationArray ecom = energy_from_value(in("ecom"));
  const StationArray etur = energy_from_value(in("etur"));
  if (!remote()) {
    ecorr_ = tess::setshaft(ecom.data(), 1, etur.data(), 1);
  } else {
    remote_client();
    ValueList reply;
    if (remote_invoke(*setshaft_,
                      {energy_to_value(ecom), Value::integer(1),
                       energy_to_value(etur), Value::integer(1),
                       Value::real(0)},
                      &reply)) {
      ecorr_ = reply[4].as_real();
    } else {
      ecorr_ = tess::setshaft(ecom.data(), 1, etur.data(), 1);
    }
  }
  have_ecorr_ = true;
}

void ShaftModule::compute() {
  // An interactive spool-speed widget change resets the state.
  if (widget("spool-speed").changed()) {
    speed_ = widget("spool-speed").real();
  }
  if (!has_in("ecom") || !has_in("etur")) {
    out_real("accel", 0.0);
    out_real("speed", speed_);
    return;
  }
  if (!have_ecorr_) run_setshaft();
  const StationArray ecom = energy_from_value(in("ecom"));
  const StationArray etur = energy_from_value(in("etur"));
  const double inertia = widget("moment-inertia").real();
  if (!remote()) {
    accel_ = tess::shaft(ecom.data(), 1, etur.data(), 1, ecorr_, speed_,
                         inertia);
  } else {
    remote_client();
    ValueList reply;
    if (remote_invoke(*shaft_,
                      {energy_to_value(ecom), Value::integer(1),
                       energy_to_value(etur), Value::integer(1),
                       Value::real(ecorr_), Value::real(speed_),
                       Value::real(inertia), Value::real(0)},
                      &reply)) {
      accel_ = reply[7].as_real();
    } else {
      accel_ = tess::shaft(ecom.data(), 1, etur.data(), 1, ecorr_, speed_,
                           inertia);
    }
  }
  out_real("accel", accel_);
  out_real("speed", speed_);
}

// --- System -----------------------------------------------------------------------

void SystemModule::spec(ModuleSpec& spec) {
  spec.radio_buttons("steady-method", {"Newton-Raphson", "Runge-Kutta 4"},
                     "Newton-Raphson");
  spec.radio_buttons(
      "transient-method",
      {"Modified Euler", "Runge-Kutta 4", "Adams", "Gear"},
      "Modified Euler");
  spec.typein_real("fuel-flow", 1.27);
  spec.typein_real("transient-seconds", 1.0);
  spec.typein_real("time-step", 0.02);
}

tess::SteadyMethod SystemModule::steady_method() const {
  return widget("steady-method").text() == "Runge-Kutta 4"
             ? tess::SteadyMethod::kRk4March
             : tess::SteadyMethod::kNewtonRaphson;
}

solvers::IntegratorKind SystemModule::transient_method() const {
  const std::string& m = widget("transient-method").text();
  if (m == "Runge-Kutta 4") return solvers::IntegratorKind::kRungeKutta4;
  if (m == "Adams") return solvers::IntegratorKind::kAdams;
  if (m == "Gear") return solvers::IntegratorKind::kGear;
  return solvers::IntegratorKind::kModifiedEuler;
}

void register_tess_modules() {
  static bool done = [] {
    flow::ModuleFactory& f = flow::ModuleFactory::instance();
    f.register_type("tess-inlet",
                    [] { return std::make_unique<InletModule>(); });
    f.register_type("tess-compressor",
                    [] { return std::make_unique<CompressorModule>(); });
    f.register_type("tess-splitter",
                    [] { return std::make_unique<SplitterModule>(); });
    f.register_type("tess-bleed",
                    [] { return std::make_unique<BleedModule>(); });
    f.register_type("tess-turbine",
                    [] { return std::make_unique<TurbineModule>(); });
    f.register_type("tess-mixer",
                    [] { return std::make_unique<MixerModule>(); });
    f.register_type("tess-duct",
                    [] { return std::make_unique<DuctModule>(); });
    f.register_type("tess-combustor",
                    [] { return std::make_unique<CombustorModule>(); });
    f.register_type("tess-nozzle",
                    [] { return std::make_unique<NozzleModule>(); });
    f.register_type("tess-shaft",
                    [] { return std::make_unique<ShaftModule>(); });
    f.register_type("tess-system",
                    [] { return std::make_unique<SystemModule>(); });
    return true;
  }();
  (void)done;
}

}  // namespace npss::glue
