#include "npss/remote_backend.hpp"

#include <algorithm>

#include "npss/procedures.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace npss::glue {

using tess::StationArray;
using uts::Value;
using uts::ValueList;

std::string_view adapted_component_name(AdaptedComponent c) {
  switch (c) {
    case AdaptedComponent::kShaft: return "shaft";
    case AdaptedComponent::kDuct: return "duct";
    case AdaptedComponent::kCombustor: return "combustor";
    case AdaptedComponent::kNozzle: return "nozzle";
  }
  return "?";
}

namespace {

Value station_value(const StationArray& a) {
  return Value::real_array({a[0], a[1], a[2], a[3]});
}

StationArray station_from(const Value& v) {
  std::vector<double> r = v.as_real_vector();
  return {r[0], r[1], r[2], r[3]};
}

std::string default_path(AdaptedComponent c) {
  switch (c) {
    case AdaptedComponent::kShaft: return kShaftPath;
    case AdaptedComponent::kDuct: return kDuctPath;
    case AdaptedComponent::kCombustor: return kCombustorPath;
    case AdaptedComponent::kNozzle: return kNozzlePath;
  }
  return "";
}

}  // namespace

RemoteBackend::RemoteBackend(rpc::SchoonerSystem& system,
                             std::string avs_machine)
    : system_(&system), avs_machine_(std::move(avs_machine)) {}

RemoteBackend::~RemoteBackend() {
  try {
    quit();
  } catch (...) {
  }
}

void RemoteBackend::place(AdaptedComponent component, int instance,
                          const Placement& placement) {
  Placement p = placement;
  if (p.path.empty()) p.path = default_path(component);

  Instance inst;
  inst.client = system_->make_client(
      avs_machine_, std::string(adapted_component_name(component)) + "[" +
                        std::to_string(instance) + "]");
  inst.client->contact_schx(p.machine, p.path);
  switch (component) {
    case AdaptedComponent::kShaft:
      inst.primary = inst.client->import_proc("shaft", shaft_import_spec());
      inst.secondary =
          inst.client->import_proc("setshaft", shaft_import_spec());
      break;
    case AdaptedComponent::kDuct:
      inst.primary = inst.client->import_proc("duct", duct_import_spec());
      break;
    case AdaptedComponent::kCombustor:
      inst.primary =
          inst.client->import_proc("combustor", combustor_import_spec());
      break;
    case AdaptedComponent::kNozzle:
      inst.primary = inst.client->import_proc("nozzle", nozzle_import_spec());
      break;
  }
  inst.clock_base = inst.client->io().endpoint().clock().now();
  if (inst.primary) inst.primary->set_call_options(options_);
  if (inst.secondary) inst.secondary->set_call_options(options_);
  instances_[{component, instance}] = std::move(inst);
}

void RemoteBackend::set_call_options(const rpc::CallOptions& opts) {
  options_ = opts;
  for (auto& [key, inst] : instances_) {
    if (inst.primary) inst.primary->set_call_options(opts);
    if (inst.secondary) inst.secondary->set_call_options(opts);
  }
}

bool RemoteBackend::remote_call(rpc::RemoteProc& proc,
                                const std::string& label, uts::ValueList args,
                                uts::ValueList* out) {
  rpc::CallResult result = proc.call(std::move(args), options_);
  if (result.failed_over) {
    ++failovers_;
    if (obs::enabled()) {
      obs::Registry::global().counter("npss.remote.failovers").add();
    }
  }
  if (result.ok()) {
    *out = std::move(result.values);
    return true;
  }
  if (!local_fallback_) result.status.raise_if_error();
  ++degraded_calls_;
  degraded_.insert(label);
  NPSS_LOG_WARN("npss.glue", label, " degraded to local compute: ",
                result.status.to_string(), " (", result.attempt_count(),
                " attempt(s))");
  if (obs::enabled()) {
    obs::Registry::global().counter("npss.remote.degraded_calls").add();
  }
  return false;
}

std::vector<std::string> RemoteBackend::degraded_instances() const {
  return {degraded_.begin(), degraded_.end()};
}

RemoteBackend::Instance* RemoteBackend::find(AdaptedComponent c,
                                             int instance) {
  auto it = instances_.find({c, instance});
  return it == instances_.end() ? nullptr : &it->second;
}

tess::ComponentHooks RemoteBackend::hooks() {
  tess::ComponentHooks local = tess::ComponentHooks::local();
  tess::ComponentHooks hooks;

  hooks.duct = [this, local](int instance, const StationArray& in,
                             double dp) {
    Instance* inst = find(AdaptedComponent::kDuct, instance);
    ValueList out;
    if (!inst ||
        !remote_call(*inst->primary, "duct[" + std::to_string(instance) + "]",
                     {station_value(in), Value::real(dp),
                      Value::real_array({0, 0, 0, 0})},
                     &out)) {
      return local.duct(instance, in, dp);
    }
    return station_from(out[2]);
  };

  hooks.combustor = [this, local](int instance, const StationArray& in,
                                  double wf, double eff, double dp) {
    Instance* inst = find(AdaptedComponent::kCombustor, instance);
    ValueList out;
    if (!inst ||
        !remote_call(*inst->primary,
                     "combustor[" + std::to_string(instance) + "]",
                     {station_value(in), Value::real(wf), Value::real(eff),
                      Value::real(dp), Value::real_array({0, 0, 0, 0})},
                     &out)) {
      return local.combustor(instance, in, wf, eff, dp);
    }
    return station_from(out[4]);
  };

  hooks.nozzle = [this, local](int instance, const StationArray& in,
                               double area, double pamb) {
    Instance* inst = find(AdaptedComponent::kNozzle, instance);
    ValueList out;
    if (!inst ||
        !remote_call(*inst->primary,
                     "nozzle[" + std::to_string(instance) + "]",
                     {station_value(in), Value::real(area), Value::real(pamb),
                      Value::real_array({0, 0, 0, 0})},
                     &out)) {
      return local.nozzle(instance, in, area, pamb);
    }
    return station_from(out[3]);
  };

  hooks.setshaft = [this, local](int spool, const StationArray& ecom,
                                 int incom, const StationArray& etur,
                                 int intur) {
    Instance* inst = find(AdaptedComponent::kShaft, spool);
    ValueList out;
    if (!inst ||
        !remote_call(*inst->secondary,
                     "shaft[" + std::to_string(spool) + "]",
                     {station_value(ecom), Value::integer(incom),
                      station_value(etur), Value::integer(intur),
                      Value::real(0)},
                     &out)) {
      return local.setshaft(spool, ecom, incom, etur, intur);
    }
    return out[4].as_real();
  };

  hooks.shaft = [this, local](int spool, const StationArray& ecom, int incom,
                              const StationArray& etur, int intur,
                              double ecorr, double xspool, double xmyi) {
    Instance* inst = find(AdaptedComponent::kShaft, spool);
    ValueList out;
    if (!inst ||
        !remote_call(*inst->primary, "shaft[" + std::to_string(spool) + "]",
                     {station_value(ecom), Value::integer(incom),
                      station_value(etur), Value::integer(intur),
                      Value::real(ecorr), Value::real(xspool),
                      Value::real(xmyi), Value::real(0)},
                     &out)) {
      return local.shaft(spool, ecom, incom, etur, intur, ecorr, xspool,
                         xmyi);
    }
    return out[7].as_real();
  };

  return hooks;
}

std::future<uts::ValueList> RemoteBackend::call_async(
    AdaptedComponent component, int instance, uts::ValueList args) {
  Instance* inst = find(component, instance);
  if (!inst) {
    throw util::LookupError("call_async: " +
                            std::string(adapted_component_name(component)) +
                            "[" + std::to_string(instance) +
                            "] is not placed remotely");
  }
  std::future<rpc::CallResult> inner =
      inst->primary->call_async(std::move(args),
                                inst->primary->call_options());
  return std::async(std::launch::deferred,
                    [inner = std::move(inner)]() mutable {
                      rpc::CallResult result = inner.get();
                      return std::move(result.values_or_raise());
                    });
}

std::string RemoteBackend::move(AdaptedComponent component, int instance,
                                const std::string& machine,
                                const std::string& path,
                                bool transfer_state) {
  Instance* inst = find(component, instance);
  if (!inst) {
    throw util::LookupError("move: " +
                            std::string(adapted_component_name(component)) +
                            "[" + std::to_string(instance) +
                            "] is not placed remotely");
  }
  return inst->client->move_proc(
      std::string(adapted_component_name(component)), machine, path,
      transfer_state);
}

int RemoteBackend::total_stale_retries() const {
  int total = 0;
  for (const auto& [key, inst] : instances_) {
    if (inst.primary) total += inst.primary->stale_retries();
    if (inst.secondary) total += inst.secondary->stale_retries();
  }
  return total;
}

std::map<std::string, int> RemoteBackend::call_counts() const {
  std::map<std::string, int> counts;
  for (const auto& [key, inst] : instances_) {
    std::string label = std::string(adapted_component_name(key.first)) + "[" +
                        std::to_string(key.second) + "]";
    int n = inst.primary ? inst.primary->calls() : 0;
    if (inst.secondary) n += inst.secondary->calls();
    counts[label] = n;
  }
  return counts;
}

int RemoteBackend::total_calls() const {
  int total = 0;
  for (const auto& [label, n] : call_counts()) total += n;
  return total;
}

util::SimTime RemoteBackend::elapsed_virtual_us() const {
  util::SimTime worst = 0;
  for (const auto& [key, inst] : instances_) {
    worst = std::max(worst, inst.client->io().endpoint().clock().now() -
                                inst.clock_base);
  }
  return worst;
}

void RemoteBackend::reset_clocks() {
  for (auto& [key, inst] : instances_) {
    inst.clock_base = inst.client->io().endpoint().clock().now();
  }
}

void RemoteBackend::quit() {
  for (auto& [key, inst] : instances_) {
    if (inst.client) inst.client->quit();
  }
}

}  // namespace npss::glue
