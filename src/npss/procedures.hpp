// The remote computation procedures of the four adapted TESS modules
// (§3.3): shaft (setshaft + shaft), duct, combustor, and nozzle. Each is a
// Schooner program image whose UTS export specification matches the paper
// where the paper shows it (setshaft/shaft are reproduced verbatim) and
// follows the same style for the other three. Installing an image on a
// virtual machine is the analogue of copying npss-shaft.f to the remote
// host and building it there.
#pragma once

#include <string>

#include "rpc/host.hpp"
#include "sim/cluster.hpp"
#include "tess/hifi_duct.hpp"

namespace npss::glue {

/// Export/import specification texts.
extern const char* kShaftSpec;      ///< setshaft + shaft (paper §3.3)
extern const char* kDuctSpec;
extern const char* kCombustorSpec;
extern const char* kNozzleSpec;

/// Matching import declarations (the "nearly identical" counterpart files).
std::string shaft_import_spec();
std::string duct_import_spec();
std::string combustor_import_spec();
std::string nozzle_import_spec();

/// Program images. `compute_us` is the simulated numeric cost per call at
/// reference-CPU speed (scaled down on faster machines like the Cray).
sim::ProgramImage shaft_image(double compute_us = 120.0);
sim::ProgramImage duct_image(double compute_us = 60.0);
sim::ProgramImage combustor_image(double compute_us = 250.0);
sim::ProgramImage nozzle_image(double compute_us = 150.0);

/// Higher-fidelity duct (§2.3 zooming): exports the *same* `duct`
/// procedure and signature as the level-1 image, but computes the loss
/// with the parallel 2-D relaxation solver (tess/hifi_duct.hpp) — so
/// zooming a duct is nothing but pointing its pathname widget at this
/// image. The level-1 dp argument is ignored by the level-2 physics.
sim::ProgramImage hifi_duct_image(tess::HifiDuctConfig config = {},
                                  double compute_us = 4000.0);

/// Conventional installation paths (what the §3.3 pathname widget holds).
constexpr const char* kShaftPath = "/npss/bin/npss-shaft";
constexpr const char* kDuctPath = "/npss/bin/npss-duct";
constexpr const char* kHifiDuctPath = "/npss/bin/npss-duct-hifi";
constexpr const char* kCombustorPath = "/npss/bin/npss-combustor";
constexpr const char* kNozzlePath = "/npss/bin/npss-nozzle";

/// Install all four images on `machine` under the conventional paths.
void install_tess_procedures(sim::Cluster& cluster,
                             const std::string& machine);

/// Install on every machine of the cluster.
void install_tess_procedures_everywhere(sim::Cluster& cluster);

}  // namespace npss::glue
