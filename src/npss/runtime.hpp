// Shared runtime context for the NPSS flow modules: which virtual cluster
// and Schooner system the executive runs against, which machine hosts the
// executive (the "AVS machine" column of Tables 1/2), and the machine
// names offered by the §3.3 remote-placement radio buttons.
#pragma once

#include <string>
#include <vector>

#include "rpc/calling.hpp"
#include "rpc/schooner.hpp"
#include "sim/cluster.hpp"

namespace npss::glue {

/// Radio-button label for local (non-remote) computation.
inline constexpr const char* kLocalMachine = "<local>";

struct NpssRuntime {
  sim::Cluster* cluster = nullptr;
  rpc::SchoonerSystem* schooner = nullptr;
  std::string avs_machine;
  /// Deadline/retry/failover policy for every adapted module's remote
  /// calls (default: the legacy one-rebind loop, no deadline).
  rpc::CallOptions call_options = rpc::CallOptions::legacy();
  /// Degrade a failed remote call to the module's local physics (default
  /// on); off = raise the terminal status, the historical behavior.
  bool local_fallback = true;

  bool configured() const { return cluster && schooner; }
  /// kLocalMachine followed by every cluster machine.
  std::vector<std::string> machine_choices() const;
};

/// Process-wide runtime used by factory-constructed modules. Configure
/// before building networks with adapted modules; clear when tearing the
/// Schooner system down.
NpssRuntime& npss_runtime();
void configure_npss_runtime(sim::Cluster& cluster,
                            rpc::SchoonerSystem& schooner,
                            std::string avs_machine);
void clear_npss_runtime();

}  // namespace npss::glue
