// The TESS engine-component modules for the flow executive — the Figure 2
// network. Stations travel between modules as UTS records; each module
// mirrors its TESS counterpart's widgets (the shaft module's
// moment-inertia / spool-speed / spool-speed-op panel is reproduced from
// the paper's Figure 2 description). The four adapted module types carry
// the two §3.3 widgets — radio buttons choosing the remote machine and a
// type-in for the executable pathname — and implement the three code
// additions of §3.3: widget declaration in spec(), sch_contact_schx at the
// top of compute(), and sch_i_quit in destroy().
#pragma once

#include <memory>

#include "flow/module.hpp"
#include "npss/runtime.hpp"
#include "rpc/client.hpp"
#include "tess/engine.hpp"

namespace npss::glue {

/// Port type for engine stations: record of W, Tt, Pt, FAR.
const uts::Type& station_type();
/// Port type for shaft energy terms: array[4] of double.
const uts::Type& energy_type();

uts::Value station_to_value(const tess::GasState& s);
tess::GasState station_from_value(const uts::Value& v);
uts::Value energy_to_value(const tess::StationArray& a);
tess::StationArray energy_from_value(const uts::Value& v);

// --- Adapted-module machinery ------------------------------------------------

/// Mixin for the four adapted module types: owns the machine/path widgets
/// and a lazy Schooner line, re-contacted whenever the placement widgets
/// change (interactive user placement, §4.2).
class AdaptedModule : public flow::Module {
 public:
  /// True when the machine widget selects a remote machine.
  bool remote() const;
  /// The module's Schooner line, contacting the remote process on first
  /// use (the sch_contact_schx call at the top of compute, §3.3).
  rpc::SchoonerClient& remote_client();

  /// The module fell back to local physics at least once (fault-tolerant
  /// degradation; see NpssRuntime::call_options / local_fallback).
  bool degraded() const { return degraded_; }

  void destroy() override;  ///< sch_i_quit (§3.3)

 protected:
  /// Declare the two placement widgets (§3.3's add-to-spec step).
  void placement_widgets(flow::ModuleSpec& spec,
                         const std::string& default_path);
  /// Called after contact; build import stubs here.
  virtual void bind_imports(rpc::SchoonerClient& client) = 0;

  /// Fault-tolerant stub invoke with the runtime's CallOptions. On
  /// success fills `out` and returns true; on terminal failure records
  /// the degradation (npss.remote.degraded_calls) and returns false so
  /// the caller computes locally — or raises the status as its Error
  /// subclass when NpssRuntime::local_fallback is off.
  bool remote_invoke(rpc::RemoteProc& proc, uts::ValueList args,
                     uts::ValueList* out);

 private:
  std::unique_ptr<rpc::SchoonerClient> client_;
  std::string contacted_machine_;
  bool degraded_ = false;
};

// --- Engine modules ------------------------------------------------------------

class InletModule final : public flow::Module {
 public:
  std::string type_name() const override { return "tess-inlet"; }
  void spec(flow::ModuleSpec& spec) override;
  void compute() override;
};

class CompressorModule final : public flow::Module {
 public:
  std::string type_name() const override { return "tess-compressor"; }
  void spec(flow::ModuleSpec& spec) override;
  void compute() override;
};

class SplitterModule final : public flow::Module {
 public:
  std::string type_name() const override { return "tess-splitter"; }
  void spec(flow::ModuleSpec& spec) override;
  void compute() override;
};

class BleedModule final : public flow::Module {
 public:
  std::string type_name() const override { return "tess-bleed"; }
  void spec(flow::ModuleSpec& spec) override;
  void compute() override;
};

class TurbineModule final : public flow::Module {
 public:
  std::string type_name() const override { return "tess-turbine"; }
  void spec(flow::ModuleSpec& spec) override;
  void compute() override;
};

class MixerModule final : public flow::Module {
 public:
  std::string type_name() const override { return "tess-mixer"; }
  void spec(flow::ModuleSpec& spec) override;
  void compute() override;
};

/// Adapted: total-pressure-loss duct.
class DuctModule final : public AdaptedModule {
 public:
  std::string type_name() const override { return "tess-duct"; }
  void spec(flow::ModuleSpec& spec) override;
  void compute() override;

 protected:
  void bind_imports(rpc::SchoonerClient& client) override;

 private:
  std::unique_ptr<rpc::RemoteProc> duct_;
};

/// Adapted: combustor with transient stator-angle control schedule
/// widgets (§3.2 mentions transient control schedules for the compressor,
/// combustor and nozzle; modeled here as a fuel-efficiency trim vs time).
class CombustorModule final : public AdaptedModule {
 public:
  std::string type_name() const override { return "tess-combustor"; }
  void spec(flow::ModuleSpec& spec) override;
  void compute() override;

 protected:
  void bind_imports(rpc::SchoonerClient& client) override;

 private:
  std::unique_ptr<rpc::RemoteProc> combustor_;
};

/// Adapted: convergent nozzle.
class NozzleModule final : public AdaptedModule {
 public:
  std::string type_name() const override { return "tess-nozzle"; }
  void spec(flow::ModuleSpec& spec) override;
  void compute() override;

 protected:
  void bind_imports(rpc::SchoonerClient& client) override;

 private:
  std::unique_ptr<rpc::RemoteProc> nozzle_;
};

/// Adapted: shaft with the paper's widget panel. Holds the spool-speed
/// state; the engine driver integrates it between network evaluations.
class ShaftModule final : public AdaptedModule {
 public:
  std::string type_name() const override { return "tess-shaft"; }
  void spec(flow::ModuleSpec& spec) override;
  void compute() override;

  double speed() const { return speed_; }
  void set_speed(double rpm) { speed_ = rpm; }
  double acceleration() const { return accel_; }
  /// Run setshaft (once per steady computation, §3.3).
  void run_setshaft();
  void clear_setshaft() { have_ecorr_ = false; }

 protected:
  void bind_imports(rpc::SchoonerClient& client) override;

 private:
  std::unique_ptr<rpc::RemoteProc> shaft_, setshaft_;
  double speed_ = 0.0;
  double accel_ = 0.0;
  double ecorr_ = 1.0;
  bool have_ecorr_ = false;
};

/// The system module: overall control of the simulation run with the
/// §3.2 solution-method widgets. Carries no ports; the driver reads it.
class SystemModule final : public flow::Module {
 public:
  std::string type_name() const override { return "tess-system"; }
  void spec(flow::ModuleSpec& spec) override;
  void compute() override {}

  tess::SteadyMethod steady_method() const;
  solvers::IntegratorKind transient_method() const;
};

/// Register every TESS module type with the flow::ModuleFactory.
void register_tess_modules();

}  // namespace npss::glue
