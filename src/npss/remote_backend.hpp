// RemoteBackend — binds an EngineModel's ComponentHooks to Schooner remote
// procedures, reproducing §3.3's adapted modules at the engine-model level
// (the path the Table 1 / Table 2 experiments use).
//
// Placement is per *component instance*: the F100 has two duct and two
// shaft instances, and in the paper each AVS module instance registers
// with the Manager and owns its remote process — same-named procedures in
// different lines, the very scenario that forced the §4.2 lines extension.
// Each placed instance therefore gets its own SchoonerClient (== line).
// Unplaced instances keep computing locally, so any subset of the adapted
// components can be remote, as in the paper's module-by-module tests.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "rpc/schooner.hpp"
#include "tess/engine.hpp"

namespace npss::glue {

enum class AdaptedComponent : std::uint8_t {
  kShaft = 0,
  kDuct,
  kCombustor,
  kNozzle,
};

std::string_view adapted_component_name(AdaptedComponent c);

struct Placement {
  std::string machine;
  std::string path;  ///< empty = conventional install path
};

class RemoteBackend {
 public:
  RemoteBackend(rpc::SchoonerSystem& system, std::string avs_machine);
  ~RemoteBackend();

  /// Place instance `instance` of `component` remotely: opens a line,
  /// issues sch_contact_schx, and builds the import stubs.
  void place(AdaptedComponent component, int instance,
             const Placement& placement);

  /// Hooks for EngineModel::set_hooks(): remote where placed, local else.
  /// When a placed instance's remote call fails terminally (per the
  /// configured CallOptions) and local fallback is on, the hook degrades
  /// to the local physics for that evaluation and the degradation is
  /// recorded (npss.remote.degraded_calls counter + degraded_instances())
  /// — the run completes instead of aborting the solve.
  tess::ComponentHooks hooks();

  /// Deadline/retry/failover policy applied to every placed stub, current
  /// and future (default: rpc::CallOptions::legacy()).
  void set_call_options(const rpc::CallOptions& opts);
  const rpc::CallOptions& call_options() const { return options_; }

  /// Degrade to the local compute hook when a remote call fails (default
  /// on). When off, hook failures raise the terminal status as its Error
  /// subclass, as the pre-fault-tolerance glue did.
  void set_local_fallback(bool on) { local_fallback_ = on; }

  /// "component[instance]" labels that have degraded to local compute at
  /// least once, and how many hook evaluations fell back in total.
  std::vector<std::string> degraded_instances() const;
  int degraded_calls() const { return degraded_calls_; }
  /// Calls recovered by migration-based failover across all stubs.
  int failovers() const { return failovers_; }

  /// Async call seam: fire instance's primary procedure without blocking,
  /// so calls on *different* placed instances (each owns its client/line)
  /// overlap on the wire. Args follow the import signature of the placed
  /// component's primary procedure. Throws util::LookupError when the
  /// instance is not placed remotely.
  std::future<uts::ValueList> call_async(AdaptedComponent component,
                                         int instance, uts::ValueList args);

  /// sch_move: migrate a placed instance's process to another machine
  /// (§4.2). Moving any procedure of the process moves its siblings too
  /// (setshaft travels with shaft). Returns the new process address.
  std::string move(AdaptedComponent component, int instance,
                   const std::string& machine, const std::string& path = "",
                   bool transfer_state = false);

  /// Remote calls per "component[instance]" so far.
  std::map<std::string, int> call_counts() const;
  int total_calls() const;

  /// Stale-binding recoveries across all stubs (each moved stub pays one
  /// on its first post-move call).
  int total_stale_retries() const;

  /// Worst per-line elapsed virtual time (network + marshal; the engine's
  /// calls are sequential so lines see disjoint slices of the same wall
  /// clock — the maximum is the end-to-end cost).
  util::SimTime elapsed_virtual_us() const;
  void reset_clocks();

  /// sch_i_quit on every line (also run by the destructor).
  void quit();

 private:
  struct Instance {
    std::unique_ptr<rpc::SchoonerClient> client;
    std::unique_ptr<rpc::RemoteProc> primary;   ///< duct/combustor/nozzle/shaft
    std::unique_ptr<rpc::RemoteProc> secondary; ///< setshaft
    util::SimTime clock_base = 0;
  };

  Instance* find(AdaptedComponent c, int instance);

  /// The one fault-tolerant hook path: runs the stub with the backend's
  /// CallOptions; on success fills `out` and returns true. On terminal
  /// failure records the degradation and returns false (hook falls back
  /// to local physics) — or raises when local fallback is off.
  bool remote_call(rpc::RemoteProc& proc, const std::string& label,
                   uts::ValueList args, uts::ValueList* out);

  rpc::SchoonerSystem* system_;
  std::string avs_machine_;
  std::map<std::pair<AdaptedComponent, int>, Instance> instances_;
  rpc::CallOptions options_ = rpc::CallOptions::legacy();
  bool local_fallback_ = true;
  std::set<std::string> degraded_;
  int degraded_calls_ = 0;
  int failovers_ = 0;
};

}  // namespace npss::glue
