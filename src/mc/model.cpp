#include "mc/model.hpp"

#include <algorithm>
#include <sstream>

#include "meta/record.hpp"
#include "util/status.hpp"

namespace npss::mc {

namespace {

using meta::Msg;
using meta::MsgKind;

/// Canonical byte image of one in-flight message (fingerprint input —
/// never decoded, so it needs no version byte).
void encode_msg(util::ByteWriter& out, const Msg& m) {
  out.u8(static_cast<std::uint8_t>(m.kind));
  out.i64(m.from);
  out.u64(m.term);
  out.u64(m.index);
  out.u64(m.prev_term);
  out.u64(m.last_index);
  out.u64(m.last_term);
  out.u64(m.commit);
  out.u64(m.commit_term);
  out.u8(m.granted ? 1 : 0);
  out.blob(meta::encode_record(m.record));
  out.u64(m.snap_index);
  out.u64(m.snap_term);
  out.str(m.snap_digest);
  out.blob(m.snapshot);
  out.blob(meta::encode_record_batch(m.batch));
}

std::string wire_name(const Msg& m) {
  std::ostringstream os;
  os << meta::msg_kind_name(m.kind);
  switch (m.kind) {
    case MsgKind::kAppend:
      os << " #" << m.index << " (term " << m.term << ")";
      break;
    case MsgKind::kAppendAck:
      os << " through #" << m.index;
      break;
    case MsgKind::kHeartbeat:
      os << " (term " << m.term << ", commit " << m.commit << ")";
      break;
    case MsgKind::kVoteReq:
    case MsgKind::kVoteAck:
      os << " (term " << m.term << (m.kind == MsgKind::kVoteAck
                                        ? (m.granted ? ", granted" : ", denied")
                                        : "")
         << ")";
      break;
    case MsgKind::kFetch:
      os << " from #" << m.index;
      break;
    case MsgKind::kFetchAck:
      os << " (snap #" << m.snap_index << " + " << m.batch.size()
         << " record(s))";
      break;
  }
  return os.str();
}

}  // namespace

World::World(Options opts) : opts_(opts) {
  nodes_.reserve(static_cast<std::size_t>(opts_.replicas));
  for (int i = 0; i < opts_.replicas; ++i) {
    Node node;
    node.core = meta::ReplicaCore(config_for(i));
    // The kMetaConfig bootstrap convention: replica 0 leads term 1.
    node.core.start(i == 0 ? meta::Role::kLeader : meta::Role::kFollower,
                    /*term=*/1, /*leader_index=*/0);
    nodes_.push_back(std::move(node));
  }
  links_.resize(static_cast<std::size_t>(opts_.replicas) *
                static_cast<std::size_t>(opts_.replicas));
  leaders_by_term_[1].insert(0);  // the bootstrap grant counts for MC001
  for (int i = 0; i < opts_.replicas; ++i) pump(i);
}

meta::CoreConfig World::config_for(int i) const {
  meta::CoreConfig config;
  config.index = i;
  config.replicas = opts_.replicas;
  config.seed = opts_.seed;
  config.snapshot_interval = opts_.snapshot_interval;
  config.quorum_commit = opts_.quorum_commit;
  return config;
}

void World::pump(int i) {
  Node& node = nodes_[static_cast<std::size_t>(i)];
  for (meta::Outbound& out : node.core.take_outbound()) {
    if (out.to < 0 || out.to >= opts_.replicas) continue;
    // A frame to a dead replica vanishes at the endpoint, exactly like
    // the simulator's NoRouteError path in the live driver.
    if (!nodes_[static_cast<std::size_t>(out.to)].up) continue;
    link(i, out.to).push_back(std::move(out.msg));
  }
  for (const meta::CoreEvent& ev : node.core.take_events()) {
    switch (ev.kind) {
      case meta::CoreEventKind::kBecameLeader:
        leaders_by_term_[ev.term].insert(i);
        break;
      case meta::CoreEventKind::kSteppedDown:
        // The live driver clears its completion map here: clients of
        // this deposed leader time out unacked, so their writes leave
        // the MC003 ledger.
        pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                      [i](const PendingOp& op) {
                                        return op.leader == i;
                                      }),
                       pending_.end());
        break;
      case meta::CoreEventKind::kCommitted:
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
          if (it->leader == i && it->index == ev.index) {
            acked_.push_back(AckedOp{it->token, it->index, ev.term});
            pending_.erase(it);
            break;
          }
        }
        break;
    }
  }
}

std::vector<Action> World::enabled() const {
  std::vector<Action> acts;
  for (int i = 0; i < opts_.replicas; ++i) {
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    if (node.up) {
      if (ops_done_ < opts_.max_ops &&
          node.core.role() == meta::Role::kLeader) {
        acts.push_back(Action{ActionKind::kPropose, i, -1});
      }
      acts.push_back(Action{ActionKind::kTimer, i, -1});
      if (crashes_ < opts_.max_crashes) {
        acts.push_back(Action{ActionKind::kCrash, i, -1});
      }
    } else if (restarts_ < opts_.max_restarts) {
      acts.push_back(Action{ActionKind::kRestart, i, -1});
    }
  }
  for (int from = 0; from < opts_.replicas; ++from) {
    for (int to = 0; to < opts_.replicas; ++to) {
      if (link(from, to).empty()) continue;
      if (nodes_[static_cast<std::size_t>(to)].up) {
        acts.push_back(Action{ActionKind::kDeliver, from, to});
      }
      if (drops_ < opts_.max_drops) {
        acts.push_back(Action{ActionKind::kDrop, from, to});
      }
      if (dups_ < opts_.max_duplicates) {
        acts.push_back(Action{ActionKind::kDuplicate, from, to});
      }
    }
  }
  return acts;
}

bool World::is_enabled(const Action& action) const {
  const std::vector<Action> acts = enabled();
  return std::find(acts.begin(), acts.end(), action) != acts.end();
}

void World::step(const Action& action) {
  const auto idx = [](int i) { return static_cast<std::size_t>(i); };
  switch (action.kind) {
    case ActionKind::kPropose: {
      Node& node = nodes_[idx(action.a)];
      const std::uint64_t token = next_token_++;
      meta::ChangeRecord rec;
      rec.kind = meta::RecordKind::kLineCreate;
      rec.line = static_cast<std::int64_t>(token);
      rec.note = "op-" + std::to_string(token);
      const std::uint64_t term = node.core.term();
      const std::uint64_t index = node.core.propose(std::move(rec));
      if (index != 0) {
        pending_.push_back(PendingOp{token, index, term, action.a});
      }
      ++ops_done_;
      pump(action.a);
      break;
    }
    case ActionKind::kDeliver: {
      Msg m = std::move(link(action.a, action.b).front());
      link(action.a, action.b).pop_front();
      nodes_[idx(action.b)].core.handle(m);
      pump(action.b);
      break;
    }
    case ActionKind::kDrop:
      link(action.a, action.b).pop_front();
      ++drops_;
      break;
    case ActionKind::kDuplicate:
      link(action.a, action.b)
          .push_back(link(action.a, action.b).front());
      ++dups_;
      break;
    case ActionKind::kTimer:
      nodes_[idx(action.a)].core.fire_timer();
      pump(action.a);
      break;
    case ActionKind::kCrash: {
      nodes_[idx(action.a)].up = false;
      // Memory-only replica: its endpoint and queues die with it.
      for (int k = 0; k < opts_.replicas; ++k) {
        link(action.a, k).clear();
        link(k, action.a).clear();
      }
      pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                    [&](const PendingOp& op) {
                                      return op.leader == action.a;
                                    }),
                     pending_.end());
      ++crashes_;
      break;
    }
    case ActionKind::kRestart: {
      Node& node = nodes_[idx(action.a)];
      node.core = meta::ReplicaCore(config_for(action.a));
      node.core.start_recovered();
      node.up = true;
      ++restarts_;
      pump(action.a);
      break;
    }
  }
}

std::optional<Violation> World::check() const {
  // MC001 — election safety: at most one leader ever led each term.
  for (const auto& [term, leaders] : leaders_by_term_) {
    if (leaders.size() > 1) {
      std::ostringstream os;
      os << "term " << term << " was led by replicas";
      for (int r : leaders) os << " r" << r;
      return Violation{"MC001", os.str()};
    }
  }
  // MC002 — log consistency: committed prefixes are pairwise equal over
  // the retained overlap.
  for (int i = 0; i < opts_.replicas; ++i) {
    for (int j = i + 1; j < opts_.replicas; ++j) {
      const Node& a = nodes_[static_cast<std::size_t>(i)];
      const Node& b = nodes_[static_cast<std::size_t>(j)];
      if (!a.up || !b.up) continue;
      const std::uint64_t hi =
          std::min(a.core.commit_index(), b.core.commit_index());
      const std::uint64_t fa = a.core.log().first_index();
      const std::uint64_t fb = b.core.log().first_index();
      // first_index() == 0 means no retained records — nothing to compare
      // (the digest invariant MC004 still covers the compacted prefix).
      if (fa == 0 || fb == 0) continue;
      const std::uint64_t lo = std::max(fa, fb);
      for (std::uint64_t k = lo; k <= hi; ++k) {
        if (a.core.log().at(k) != b.core.log().at(k)) {
          std::ostringstream os;
          os << "replicas r" << i << " and r" << j
             << " both committed index " << k << " but hold different "
             << "records (terms " << a.core.log().term_at(k) << " vs "
             << b.core.log().term_at(k) << ")";
          return Violation{"MC002", os.str()};
        }
      }
    }
  }
  // MC003 — durability: every leader whose term is at or past an acked
  // write's term still holds that write (Leader Completeness).
  for (int i = 0; i < opts_.replicas; ++i) {
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    if (!node.up || node.core.role() != meta::Role::kLeader) continue;
    for (const AckedOp& op : acked_) {
      if (node.core.term() < op.term) continue;
      std::string how;
      if (op.index <= node.core.commit_index()) {
        // Applied (possibly compacted away): the op's effect — line
        // `token` exists — must be visible in the state table.
        if (!node.core.state().lines().contains(
                static_cast<std::int64_t>(op.token))) {
          how = "its applied state has no line " + std::to_string(op.token);
        }
      } else if (op.index <= node.core.log().last_index()) {
        if (node.core.log().term_at(op.index) != op.term) {
          how = "its log holds a different term-" +
                std::to_string(node.core.log().term_at(op.index)) +
                " entry at that index";
        }
      } else {
        how = "its log ends at index " +
              std::to_string(node.core.log().last_index());
      }
      if (!how.empty()) {
        std::ostringstream os;
        os << "op-" << op.token << " was acknowledged at index " << op.index
           << " (term " << op.term << ") but leader r" << i << " of term "
           << node.core.term() << " lost it: " << how;
        return Violation{"MC003", os.str()};
      }
    }
  }
  // MC004 — convergence: equal applied index implies equal digest.
  for (int i = 0; i < opts_.replicas; ++i) {
    for (int j = i + 1; j < opts_.replicas; ++j) {
      const Node& a = nodes_[static_cast<std::size_t>(i)];
      const Node& b = nodes_[static_cast<std::size_t>(j)];
      if (!a.up || !b.up) continue;
      if (a.core.state().last_applied() != b.core.state().last_applied()) {
        continue;
      }
      if (a.core.state().last_applied() == 0) continue;
      if (a.core.state().digest() != b.core.state().digest()) {
        std::ostringstream os;
        os << "replicas r" << i << " and r" << j << " both applied through "
           << "index " << a.core.state().last_applied()
           << " but their state digests differ";
        return Violation{"MC004", os.str()};
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> World::check_leaf() const {
  // MC005 — replay idempotence: rebuilding from the replica's own
  // snapshot + retained log, applied twice, reproduces its live state.
  for (int i = 0; i < opts_.replicas; ++i) {
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    if (!node.up) continue;
    meta::ReplicatedState rebuilt;
    try {
      if (!node.core.snapshots().empty()) {
        rebuilt = meta::ReplicatedState::deserialize(
            node.core.snapshots().latest().image);
      }
      const auto tail =
          node.core.log().tail(node.core.log().first_index());
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& [index, record] : tail) {
          if (index > node.core.commit_index()) break;
          rebuilt.apply(record, index);
        }
      }
    } catch (const util::Error& e) {
      return Violation{"MC005", "replica r" + std::to_string(i) +
                                    " cannot replay its own log: " + e.what()};
    }
    if (rebuilt.digest() != node.core.state().digest()) {
      std::ostringstream os;
      os << "replica r" << i << ": snapshot + log replayed twice gives "
         << "digest " << rebuilt.digest().substr(0, 12) << "…, live state is "
         << node.core.state().digest().substr(0, 12) << "…";
      return Violation{"MC005", os.str()};
    }
  }
  return std::nullopt;
}

util::Bytes World::fingerprint() const {
  util::ByteWriter out;
  out.u8(static_cast<std::uint8_t>(opts_.replicas));
  out.u8(opts_.quorum_commit ? 1 : 0);
  out.u32(static_cast<std::uint32_t>(ops_done_));
  out.u32(static_cast<std::uint32_t>(crashes_));
  out.u32(static_cast<std::uint32_t>(restarts_));
  out.u32(static_cast<std::uint32_t>(drops_));
  out.u32(static_cast<std::uint32_t>(dups_));
  for (const Node& node : nodes_) {
    out.u8(node.up ? 1 : 0);
    // A dead replica's memory is gone: two worlds that differ only in
    // what a crashed core last held are the same state.
    if (node.up) out.blob(node.core.fingerprint());
  }
  for (const auto& queue : links_) {
    out.u32(static_cast<std::uint32_t>(queue.size()));
    for (const Msg& m : queue) encode_msg(out, m);
  }
  out.u32(static_cast<std::uint32_t>(pending_.size()));
  for (const PendingOp& op : pending_) {
    out.u64(op.token);
    out.u64(op.index);
    out.u64(op.term);
    out.i64(op.leader);
  }
  out.u32(static_cast<std::uint32_t>(acked_.size()));
  for (const AckedOp& op : acked_) {
    out.u64(op.token);
    out.u64(op.index);
    out.u64(op.term);
  }
  out.u32(static_cast<std::uint32_t>(leaders_by_term_.size()));
  for (const auto& [term, leaders] : leaders_by_term_) {
    out.u64(term);
    out.u32(static_cast<std::uint32_t>(leaders.size()));
    for (int r : leaders) out.i64(r);
  }
  return std::move(out).take();
}

std::string World::describe(const Action& action) const {
  std::ostringstream os;
  switch (action.kind) {
    case ActionKind::kPropose:
      os << "propose op-" << next_token_ << " on leader r" << action.a;
      break;
    case ActionKind::kDeliver:
      os << "deliver r" << action.a << "→r" << action.b << " "
         << wire_name(link(action.a, action.b).front());
      break;
    case ActionKind::kDrop:
      os << "drop r" << action.a << "→r" << action.b << " "
         << wire_name(link(action.a, action.b).front());
      break;
    case ActionKind::kDuplicate:
      os << "duplicate r" << action.a << "→r" << action.b << " "
         << wire_name(link(action.a, action.b).front());
      break;
    case ActionKind::kTimer: {
      const auto& core = nodes_[static_cast<std::size_t>(action.a)].core;
      os << "timer fires on r" << action.a << " ("
         << meta::role_name(core.role()) << ", term " << core.term() << ")";
      break;
    }
    case ActionKind::kCrash:
      os << "crash r" << action.a;
      break;
    case ActionKind::kRestart:
      os << "restart r" << action.a << " (rejoins as learner)";
      break;
  }
  return os.str();
}

std::string World::summary() const {
  std::ostringstream os;
  for (int i = 0; i < opts_.replicas; ++i) {
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    os << "  r" << i << ": ";
    if (!node.up) {
      os << "down\n";
      continue;
    }
    const auto& core = node.core;
    os << meta::role_name(core.role()) << (core.learner() ? " (learner)" : "")
       << ", term " << core.term() << ", log 1.." << core.log().last_index()
       << ", commit " << core.commit_index() << ", digest "
       << core.state().digest().substr(0, 12) << "…\n";
  }
  if (!acked_.empty()) {
    os << "  acked:";
    for (const AckedOp& op : acked_) {
      os << " op-" << op.token << "@#" << op.index << "(t" << op.term << ")";
    }
    os << "\n";
  }
  return os.str();
}

std::uint64_t World::footprint(const Action& action) const {
  const int n = opts_.replicas;
  const auto node_bit = [](int i) { return std::uint64_t{1} << i; };
  const auto link_bit = [n](int from, int to) {
    return std::uint64_t{1} << (n + from * n + to);
  };
  std::uint64_t mask = 0;
  const auto touch_outgoing = [&](int i) {
    for (int k = 0; k < n; ++k) {
      if (k != i) mask |= link_bit(i, k);
    }
  };
  switch (action.kind) {
    case ActionKind::kPropose:
    case ActionKind::kTimer:
      mask |= node_bit(action.a);
      touch_outgoing(action.a);
      break;
    case ActionKind::kDeliver:
      mask |= link_bit(action.a, action.b) | node_bit(action.b);
      touch_outgoing(action.b);
      break;
    case ActionKind::kDrop:
    case ActionKind::kDuplicate:
      mask |= link_bit(action.a, action.b);
      break;
    case ActionKind::kCrash:
      mask |= node_bit(action.a);
      for (int k = 0; k < n; ++k) {
        if (k == action.a) continue;
        mask |= link_bit(action.a, k) | link_bit(k, action.a);
      }
      break;
    case ActionKind::kRestart:
      mask |= node_bit(action.a);
      touch_outgoing(action.a);
      break;
  }
  return mask;
}

}  // namespace npss::mc
