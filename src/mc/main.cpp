// meta_check — deterministic model checker for the replicated Manager.
//
//   meta_check [--replicas N] [--depth D] [--ops K] [--crashes C]
//              [--restarts R] [--drops X] [--dups U] [--seed S]
//              [--snapshot-interval I] [--max-states M] [--legacy]
//              [--no-reduce] [--no-minimize] [--replay SCHEDULE]
//              [--json] [--list-codes]
//
// Runs N meta::ReplicaCore instances over a virtual network and
// exhaustively explores every message delivery order, drop, duplicate,
// crash/restart point, and election-timer firing up to --depth steps,
// checking the MC0xx safety invariants after every step. Exit status:
// 0 = every explored schedule satisfies every invariant, 1 = a violation
// was found (its minimized schedule and transcript are printed — feed the
// schedule back through --replay to re-execute it), 2 = usage error.
//
// --legacy selects the PR 6 fire-and-forget protocol, which MUST fail
// with an MC003 acked-then-lost transcript — the negative corpus proving
// the checker can see the bug the quorum-commit protocol fixed.
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/diag.hpp"
#include "mc/explore.hpp"
#include "mc/model.hpp"
#include "util/status.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: meta_check [options]\n"
        "\n"
        "Bounded model checking of the replicated Manager control plane.\n"
        "Explores every schedule (message orders, drops, duplicates,\n"
        "crashes, restarts, timer firings) up to --depth steps and checks\n"
        "the MC0xx safety invariants after every step.\n"
        "\n"
        "  --replicas N           group size (1..7, default 3)\n"
        "  --depth D              schedule length bound (default 12)\n"
        "  --ops K                max client writes per schedule (default 2)\n"
        "  --crashes C            max replica crashes (default 1)\n"
        "  --restarts R           max learner rejoins (default 0)\n"
        "  --drops X              max messages lost (default 2)\n"
        "  --dups U               max messages duplicated (default 0)\n"
        "  --seed S               election-stagger seed (default 42)\n"
        "  --snapshot-interval I  compaction interval, 0 = never (default 0)\n"
        "  --max-states M         step budget, 0 = unbounded (default 250000)\n"
        "  --legacy               check the PR 6 protocol (MUST fail: MC003)\n"
        "  --no-reduce            disable sleep-set partial-order reduction\n"
        "  --no-minimize          keep the first violating schedule as-is\n"
        "  --replay SCHED         re-execute one schedule (e.g. "
        "\"p0,c0,t1,d1>2,d2>1\")\n"
        "  --json                 machine-readable report\n"
        "  --list-codes           print the MC0xx diagnostic table\n"
        "\n"
        "Exit 0 = all explored schedules safe, 1 = violation found,\n"
        "2 = usage error.\n";
}

void list_codes(std::ostream& os) {
  for (const npss::check::CodeInfo& info :
       npss::check::diagnostic_code_table()) {
    if (info.code.substr(0, 2) != "MC") continue;
    os << info.code << "  "
       << npss::check::severity_name(info.default_severity) << "  "
       << info.summary << "\n";
  }
}

std::string json_report(const npss::mc::ExploreResult& result,
                        const npss::mc::Options& opts) {
  using npss::check::json_escape;
  std::ostringstream os;
  os << "{\n"
     << "  \"mode\": \"" << (opts.quorum_commit ? "quorum" : "legacy")
     << "\",\n"
     << "  \"replicas\": " << opts.replicas << ",\n"
     << "  \"states_explored\": " << result.stats.states_explored << ",\n"
     << "  \"visited_hits\": " << result.stats.visited_hits << ",\n"
     << "  \"sleep_pruned\": " << result.stats.sleep_pruned << ",\n"
     << "  \"transitions\": " << result.stats.transitions << ",\n"
     << "  \"budget_exhausted\": "
     << (result.stats.budget_exhausted ? "true" : "false") << ",\n";
  if (result.violation) {
    os << "  \"violation\": {\n"
       << "    \"code\": \"" << json_escape(result.violation->code)
       << "\",\n"
       << "    \"message\": \"" << json_escape(result.violation->message)
       << "\",\n"
       << "    \"schedule\": \""
       << json_escape(npss::mc::encode_schedule(result.schedule)) << "\"\n"
       << "  }\n";
  } else {
    os << "  \"violation\": null\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  npss::mc::Options opts;
  npss::mc::ExploreOptions x;
  bool json = false;
  std::string replay_text;

  const auto need_value = [&](int& i, const std::string& arg) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "meta_check: " << arg << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--replicas") {
        opts.replicas = std::stoi(need_value(i, arg));
      } else if (arg == "--depth") {
        x.depth = std::stoi(need_value(i, arg));
      } else if (arg == "--ops") {
        opts.max_ops = std::stoi(need_value(i, arg));
      } else if (arg == "--crashes") {
        opts.max_crashes = std::stoi(need_value(i, arg));
      } else if (arg == "--restarts") {
        opts.max_restarts = std::stoi(need_value(i, arg));
      } else if (arg == "--drops") {
        opts.max_drops = std::stoi(need_value(i, arg));
      } else if (arg == "--dups") {
        opts.max_duplicates = std::stoi(need_value(i, arg));
      } else if (arg == "--seed") {
        opts.seed = std::stoull(need_value(i, arg));
      } else if (arg == "--snapshot-interval") {
        opts.snapshot_interval = std::stoull(need_value(i, arg));
      } else if (arg == "--max-states") {
        x.max_states = std::stoull(need_value(i, arg));
      } else if (arg == "--legacy") {
        opts.quorum_commit = false;
      } else if (arg == "--no-reduce") {
        x.reduce = false;
      } else if (arg == "--no-minimize") {
        x.minimize = false;
      } else if (arg == "--replay") {
        replay_text = need_value(i, arg);
      } else if (arg == "--json") {
        json = true;
      } else if (arg == "--list-codes") {
        list_codes(std::cout);
        return 0;
      } else if (arg == "-h" || arg == "--help") {
        usage(std::cout);
        return 0;
      } else {
        std::cerr << "meta_check: unknown option '" << arg << "'\n";
        usage(std::cerr);
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "meta_check: bad value for " << arg << "\n";
      return 2;
    }
  }
  if (opts.replicas < 1 || opts.replicas > 7) {
    std::cerr << "meta_check: --replicas must be 1..7\n";
    return 2;
  }
  if (x.depth < 0) {
    std::cerr << "meta_check: --depth must be >= 0\n";
    return 2;
  }

  npss::mc::ExploreResult result;
  try {
    if (!replay_text.empty()) {
      result = npss::mc::replay(opts, npss::mc::decode_schedule(replay_text));
    } else {
      result = npss::mc::explore(opts, x);
    }
  } catch (const npss::util::Error& e) {
    std::cerr << "meta_check: " << e.what() << "\n";
    return 2;
  }

  if (json) {
    std::cout << json_report(result, opts);
  } else {
    std::cout << "meta_check: " << (opts.quorum_commit ? "quorum" : "legacy")
              << " protocol, " << opts.replicas << " replica(s)\n"
              << "  states explored: " << result.stats.states_explored
              << "  visited hits: " << result.stats.visited_hits
              << "  sleep pruned: " << result.stats.sleep_pruned << "\n";
    if (result.stats.budget_exhausted) {
      std::cout << "  note: --max-states budget exhausted before the bound; "
                   "coverage is partial\n";
    }
    if (result.violation) {
      std::cout << "\nerror: " << result.violation->code << ": "
                << result.violation->message << "\n\n"
                << result.transcript
                << "\nreplay with: meta_check"
                << (opts.quorum_commit ? "" : " --legacy") << " --replicas "
                << opts.replicas << " --replay '"
                << npss::mc::encode_schedule(result.schedule) << "'\n";
    } else {
      std::cout << "  every explored schedule satisfies MC001-MC005\n";
    }
  }
  return result.violation ? 1 : 0;
}
