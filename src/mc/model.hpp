// The model under check: N meta::ReplicaCore instances over a virtual
// network, as one copyable World value.
//
// meta_check explores Manager replica groups the way the fault suite
// never can: instead of sampling drop schedules, it *enumerates* them.
// That is only possible because ReplicaCore is a pure steppable state
// machine — every nondeterministic choice the real system makes (which
// message arrives next, which timer fires, which replica dies) is an
// explicit Action here, and applying an Action is deterministic. The
// World owns everything around the cores: per-pair FIFO links, crash and
// restart bookkeeping, the budgets that bound the search, and the
// client's ledger of acknowledged writes — the ground truth the
// durability invariant (MC003) is judged against.
//
// Invariants (the MC0xx rows in check::diagnostic_code_table()):
//
//   MC001  election safety     — at most one leader per term, ever
//   MC002  log consistency     — committed prefixes are pairwise equal
//   MC003  durability          — an acked write is never lost: every
//                                leader of a later-or-equal term holds it
//   MC004  convergence         — equal applied index ⇒ equal state digest
//   MC005  replay idempotence  — snapshot + own log, applied twice,
//                                reproduces the live state (leaf check)
//
// check() is cheap and runs after every step; check_leaf() re-applies
// logs and runs only at the depth bound.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "meta/core.hpp"
#include "util/bytes.hpp"

namespace npss::mc {

/// Search-space bounds. Every budget is a *maximum over one schedule*,
/// not a rate: with max_crashes = 1 the checker tries every schedule in
/// which at most one replica dies.
struct Options {
  int replicas = 3;
  bool quorum_commit = true;  ///< false = PR 6 legacy protocol (MUST fail)
  int max_ops = 2;            ///< client proposes per schedule
  int max_crashes = 1;
  int max_restarts = 0;       ///< rejoins (as non-voting learners)
  int max_drops = 2;          ///< messages the network may lose
  int max_duplicates = 0;     ///< messages the network may re-deliver
  std::uint64_t seed = 42;    ///< election-stagger seed for the cores
  std::uint64_t snapshot_interval = 0;  ///< 0 = never compact
};

enum class ActionKind : std::uint8_t {
  kPropose = 1,  ///< client write on replica a (enabled on the leader)
  kDeliver,      ///< hand the head of link a→b to replica b
  kDrop,         ///< the network loses the head of link a→b
  kDuplicate,    ///< the network re-enqueues the head of link a→b
  kTimer,        ///< replica a's role timer fires
  kCrash,        ///< replica a dies; its memory and in-flight frames go
  kRestart,      ///< replica a rejoins as a non-voting learner
};

/// One scheduler choice. `a` is the acting/affected replica; `b` is the
/// destination replica for the link actions, -1 otherwise.
struct Action {
  ActionKind kind = ActionKind::kDeliver;
  int a = -1;
  int b = -1;

  bool operator==(const Action&) const = default;
};

/// A safety violation, phrased as one of the MC0xx diagnostics.
struct Violation {
  std::string code;     ///< "MC001".."MC005"
  std::string message;  ///< what was observed, with replica/term/index
};

/// One acknowledged client write: the ledger row MC003 defends.
struct AckedOp {
  std::uint64_t token = 0;  ///< client-visible op id (the line id used)
  std::uint64_t index = 0;  ///< changelog index the leader assigned
  std::uint64_t term = 0;   ///< term the commit was reported under
};

class World {
 public:
  explicit World(Options opts);

  const Options& options() const { return opts_; }

  /// Every action the scheduler may take from this state, in canonical
  /// order (deterministic across runs).
  std::vector<Action> enabled() const;

  /// Apply one enabled action. Precondition: `is_enabled(action)`.
  void step(const Action& action);

  bool is_enabled(const Action& action) const;

  /// The cheap per-step invariants (MC001–MC004).
  std::optional<Violation> check() const;

  /// The expensive leaf invariant (MC005 replay idempotence).
  std::optional<Violation> check_leaf() const;

  /// Canonical image of the entire world — cores, links, budgets,
  /// ledger — for the explorer's visited set.
  util::Bytes fingerprint() const;

  /// Human transcript line for `action` against the current state, e.g.
  /// "deliver r0→r1 append #3 (term 2)".
  std::string describe(const Action& action) const;

  /// One-line state summary per replica (transcript epilogue).
  std::string summary() const;

  const std::vector<AckedOp>& acked() const { return acked_; }
  bool up(int i) const { return nodes_[static_cast<std::size_t>(i)].up; }

  /// Resource bitmask for independence: bit i = node i, bit
  /// replicas + a*replicas + b = link a→b. Two actions commute when
  /// their masks are disjoint (sleep-set reduction).
  std::uint64_t footprint(const Action& action) const;

 private:
  struct Node {
    meta::ReplicaCore core;
    bool up = true;
  };

  std::deque<meta::Msg>& link(int from, int to) {
    return links_[static_cast<std::size_t>(from * opts_.replicas + to)];
  }
  const std::deque<meta::Msg>& link(int from, int to) const {
    return links_[static_cast<std::size_t>(from * opts_.replicas + to)];
  }

  /// Drain replica i's queued outputs: outbound messages onto the links
  /// (frames to a dead replica vanish — its endpoint is gone), events
  /// into the client ledger and leader history.
  void pump(int i);

  meta::CoreConfig config_for(int i) const;

  Options opts_;
  std::vector<Node> nodes_;
  std::vector<std::deque<meta::Msg>> links_;  ///< [from * n + to]

  // Budgets consumed so far (each gates its action in enabled()).
  int ops_done_ = 0;
  int crashes_ = 0;
  int restarts_ = 0;
  int drops_ = 0;
  int dups_ = 0;

  /// Proposed but not yet acknowledged: (token, index, term, leader).
  /// Dropped when the proposing leader crashes or steps down — the
  /// client never saw an ack, so losing the write is legal.
  struct PendingOp {
    std::uint64_t token = 0;
    std::uint64_t index = 0;
    std::uint64_t term = 0;
    int leader = -1;
  };
  std::vector<PendingOp> pending_;
  std::vector<AckedOp> acked_;
  std::uint64_t next_token_ = 1;

  /// Every replica ever observed leading each term (MC001).
  std::map<std::uint64_t, std::set<int>> leaders_by_term_;
};

}  // namespace npss::mc
