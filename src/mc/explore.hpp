// Schedule exploration: bounded DFS over World action schedules with
// sleep-set partial-order reduction and a hashed visited set.
//
// The search is depth-first over every Action the World enables, up to
// `depth` steps. Two reductions keep it tractable:
//
//  * Visited set — sha256 of World::fingerprint() maps to the
//    exploration already recorded from that state: its *remaining
//    depth* and the *sleep set* it ran under. A revisit is skipped only
//    when the cached exploration dominates the current one — at least
//    as much budget AND a sleep set that is a subset of the incoming
//    one. Either refinement alone re-explores: a shallow first visit
//    would mask violations needing longer suffixes, and a first visit
//    under a larger sleep set pruned subtrees the current visit must
//    still search (skipping on hash+depth alone is unsound once sleep
//    sets are on — those pruned transitions would never be explored
//    from that state along any path).
//
//  * Sleep sets — after exploring sibling action A, A enters the sleep
//    set for the remaining siblings; children inherit the sleep set
//    minus actions that conflict with the edge taken (two actions
//    conflict when their World::footprint() masks intersect). This is
//    the classic Godefroid sleep-set reduction: schedules that only
//    reorder commuting actions collapse to one representative
//    (DESIGN.md §17 discusses the trade).
//
// A violating schedule is minimized by greedy delta-debugging (drop one
// action, replay, keep the drop if the same code still fires) and
// rendered as a human-readable transcript plus a compact schedule
// string that decode_schedule()/replay() — and the regression tests —
// re-execute exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mc/model.hpp"

namespace npss::mc {

struct ExploreOptions {
  int depth = 12;                    ///< schedule length bound
  std::uint64_t max_states = 250000; ///< step budget (0 = unbounded)
  bool reduce = true;                ///< sleep-set reduction
  bool minimize = true;              ///< delta-debug violating schedules
};

struct ExploreStats {
  std::uint64_t states_explored = 0;  ///< step() calls made
  std::uint64_t visited_hits = 0;     ///< subtrees cut by the visited set
  std::uint64_t sleep_pruned = 0;     ///< sibling actions cut by sleep sets
  std::uint64_t transitions = 0;      ///< enabled actions summed over states
  bool budget_exhausted = false;      ///< max_states hit before completion
};

struct ExploreResult {
  std::optional<Violation> violation;
  std::vector<Action> schedule;  ///< minimized violating schedule
  std::string transcript;        ///< human-readable replay of `schedule`
  ExploreStats stats;
};

/// Exhaustively explore `world_opts` up to the bounds. Deterministic:
/// the same options always return the same result.
ExploreResult explore(const Options& world_opts, const ExploreOptions& x);

/// Re-execute one schedule, checking invariants after every step and the
/// leaf invariant at the end. Returns the violation (if any), the full
/// transcript, and stats counting just the replayed steps. Throws
/// util::ProtocolError if an action is not enabled when its turn comes.
ExploreResult replay(const Options& world_opts,
                     const std::vector<Action>& schedule);

/// Compact schedule text: comma-separated actions, e.g.
/// "p0,c0,t1,d1>2,d2>1" — p=propose, t=timer, c=crash, r=restart,
/// d=deliver, x=drop, u=duplicate; "a>b" names the link.
std::string encode_schedule(const std::vector<Action>& schedule);
/// Throws util::ParseError on malformed text.
std::vector<Action> decode_schedule(const std::string& text);

}  // namespace npss::mc
