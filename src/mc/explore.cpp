#include "mc/explore.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <unordered_map>

#include "util/sha256.hpp"
#include "util/status.hpp"

namespace npss::mc {

namespace {

std::string state_hash(const World& world) {
  const util::Bytes image = world.fingerprint();
  return util::sha256_hex(std::string_view(
      reinterpret_cast<const char*>(image.data()), image.size()));
}

/// True when every action in `inner` also appears in `outer`.
bool subset(const std::vector<Action>& inner,
            const std::vector<Action>& outer) {
  return std::all_of(inner.begin(), inner.end(), [&](const Action& a) {
    return std::find(outer.begin(), outer.end(), a) != outer.end();
  });
}

/// What one exploration of a cached state covered: how much depth it had
/// and which actions its sleep set pruned. A revisit may only be skipped
/// when the cached exploration dominates it — otherwise a subtree pruned
/// under the cached sleep set would never be explored from this state
/// along any path (violations missed inside the bound).
struct VisitedEntry {
  int depth = -1;
  std::vector<Action> sleep;
};

struct Search {
  const ExploreOptions& x;
  const Options& wopts;
  /// state hash -> the dominating exploration recorded from that state.
  std::unordered_map<std::string, VisitedEntry> visited;
  ExploreStats stats;
  std::optional<Violation> violation;
  std::vector<Action> path;
  std::vector<Action> found;
  bool stopped = false;

  bool out_of_budget() {
    if (x.max_states != 0 && stats.states_explored >= x.max_states) {
      stats.budget_exhausted = true;
      stopped = true;
    }
    return stopped;
  }

  /// Returns true when a violation was found (search stops).
  bool dfs(const World& world, int remaining,
           const std::vector<Action>& sleep) {
    if (std::optional<Violation> v = world.check()) {
      violation = std::move(v);
      found = path;
      return true;
    }
    if (remaining == 0) {
      if (std::optional<Violation> v = world.check_leaf()) {
        violation = std::move(v);
        found = path;
        return true;
      }
      return false;
    }
    const std::vector<Action> acts = world.enabled();
    stats.transitions += acts.size();
    std::vector<Action> local_sleep = sleep;
    for (const Action& action : acts) {
      if (x.reduce &&
          std::find(local_sleep.begin(), local_sleep.end(), action) !=
              local_sleep.end()) {
        ++stats.sleep_pruned;
        continue;
      }
      if (out_of_budget()) return false;
      World next = world;
      next.step(action);
      ++stats.states_explored;
      std::vector<Action> child_sleep;
      if (x.reduce) {
        // A sleeping sibling stays asleep below this edge only if it
        // commutes with the edge (disjoint footprints).
        const std::uint64_t taken = world.footprint(action);
        for (const Action& b : local_sleep) {
          if ((world.footprint(b) & taken) == 0) child_sleep.push_back(b);
        }
      }
      const std::string hash = state_hash(next);
      auto it = visited.find(hash);
      if (it != visited.end() && it->second.depth >= remaining - 1 &&
          subset(it->second.sleep, child_sleep)) {
        // The cached exploration had at least this much budget and its
        // sleep set pruned no action ours would explore (it is a subset
        // of ours): nothing new can be found below.
        ++stats.visited_hits;
      } else {
        // Record this exploration only when it dominates the cached one
        // (deeper-or-equal with fewer-or-equal sleeping actions); a
        // re-exploration under an incomparable sleep set keeps the
        // cached entry — redundant work, never missed work.
        if (it == visited.end()) {
          visited.emplace(hash, VisitedEntry{remaining - 1, child_sleep});
        } else if (remaining - 1 >= it->second.depth &&
                   subset(child_sleep, it->second.sleep)) {
          it->second = VisitedEntry{remaining - 1, child_sleep};
        }
        path.push_back(action);
        if (dfs(next, remaining - 1, child_sleep)) return true;
        path.pop_back();
        if (stopped) return false;
      }
      local_sleep.push_back(action);
    }
    return false;
  }
};

struct RunOutcome {
  bool valid = true;  ///< every action was enabled when its turn came
  std::optional<Violation> violation;
  std::string transcript;
  std::uint64_t steps = 0;
};

RunOutcome run_schedule(const Options& wopts,
                        const std::vector<Action>& schedule) {
  RunOutcome out;
  World world(wopts);
  std::ostringstream os;
  os << "schedule: " << encode_schedule(schedule) << "\n";
  if (out.violation = world.check(); out.violation) {
    os << "violation before any step\n";
    out.transcript = os.str();
    return out;
  }
  std::size_t n = 0;
  for (const Action& action : schedule) {
    if (!world.is_enabled(action)) {
      out.valid = false;
      out.transcript = os.str();
      return out;
    }
    os << "  " << ++n << ". " << world.describe(action) << "\n";
    world.step(action);
    ++out.steps;
    if (out.violation = world.check(); out.violation) break;
  }
  if (!out.violation) out.violation = world.check_leaf();
  if (out.violation) {
    os << "violation: error: " << out.violation->code << ": "
       << out.violation->message << "\n";
  } else {
    os << "no violation\n";
  }
  os << "final state:\n" << world.summary();
  out.transcript = os.str();
  return out;
}

/// Greedy delta-debugging: drop one action at a time for as long as the
/// same diagnostic code still fires on replay.
std::vector<Action> minimize_schedule(const Options& wopts,
                                      std::vector<Action> schedule,
                                      const std::string& code) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      std::vector<Action> candidate = schedule;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      const RunOutcome out = run_schedule(wopts, candidate);
      if (out.valid && out.violation && out.violation->code == code) {
        schedule = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return schedule;
}

char action_char(ActionKind kind) {
  switch (kind) {
    case ActionKind::kPropose: return 'p';
    case ActionKind::kDeliver: return 'd';
    case ActionKind::kDrop: return 'x';
    case ActionKind::kDuplicate: return 'u';
    case ActionKind::kTimer: return 't';
    case ActionKind::kCrash: return 'c';
    case ActionKind::kRestart: return 'r';
  }
  return '?';
}

}  // namespace

ExploreResult explore(const Options& world_opts, const ExploreOptions& x) {
  Search search{x, world_opts, {}, {}, {}, {}, {}, false};
  World root(world_opts);
  search.visited.emplace(state_hash(root), VisitedEntry{x.depth, {}});
  search.dfs(root, x.depth, {});
  ExploreResult result;
  result.stats = search.stats;
  if (search.violation) {
    std::vector<Action> schedule = search.found;
    if (x.minimize) {
      schedule = minimize_schedule(world_opts, schedule, search.violation->code);
    }
    // Re-run the (possibly shrunk) schedule so the reported violation
    // and transcript describe exactly what the schedule reproduces.
    const RunOutcome out = run_schedule(world_opts, schedule);
    result.violation = out.violation ? out.violation : search.violation;
    result.schedule = std::move(schedule);
    result.transcript = out.transcript;
  }
  return result;
}

ExploreResult replay(const Options& world_opts,
                     const std::vector<Action>& schedule) {
  const RunOutcome out = run_schedule(world_opts, schedule);
  if (!out.valid) {
    throw util::ProtocolError(
        "schedule action " + std::to_string(out.steps + 1) +
        " is not enabled at its turn (wrong --replicas/--legacy bounds?)");
  }
  ExploreResult result;
  result.violation = out.violation;
  result.schedule = schedule;
  result.transcript = out.transcript;
  result.stats.states_explored = out.steps;
  return result;
}

std::string encode_schedule(const std::vector<Action>& schedule) {
  std::ostringstream os;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i) os << ',';
    const Action& a = schedule[i];
    os << action_char(a.kind) << a.a;
    if (a.kind == ActionKind::kDeliver || a.kind == ActionKind::kDrop ||
        a.kind == ActionKind::kDuplicate) {
      os << '>' << a.b;
    }
  }
  return os.str();
}

std::vector<Action> decode_schedule(const std::string& text) {
  std::vector<Action> schedule;
  std::size_t pos = 0;
  const auto parse_int = [&](const char* what) {
    std::size_t start = pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(
                                    text[pos]))) {
      ++pos;
    }
    if (pos == start) {
      throw util::ParseError(std::string("schedule: expected ") + what +
                             " at offset " + std::to_string(start) + " in '" +
                             text + "'");
    }
    return std::stoi(text.substr(start, pos - start));
  };
  while (pos < text.size()) {
    Action action;
    switch (text[pos]) {
      case 'p': action.kind = ActionKind::kPropose; break;
      case 'd': action.kind = ActionKind::kDeliver; break;
      case 'x': action.kind = ActionKind::kDrop; break;
      case 'u': action.kind = ActionKind::kDuplicate; break;
      case 't': action.kind = ActionKind::kTimer; break;
      case 'c': action.kind = ActionKind::kCrash; break;
      case 'r': action.kind = ActionKind::kRestart; break;
      default:
        throw util::ParseError("schedule: unknown action '" +
                               std::string(1, text[pos]) + "' in '" + text +
                               "'");
    }
    ++pos;
    action.a = parse_int("replica index");
    if (action.kind == ActionKind::kDeliver ||
        action.kind == ActionKind::kDrop ||
        action.kind == ActionKind::kDuplicate) {
      if (pos >= text.size() || text[pos] != '>') {
        throw util::ParseError("schedule: link action needs 'a>b' in '" +
                               text + "'");
      }
      ++pos;
      action.b = parse_int("destination index");
    }
    schedule.push_back(action);
    if (pos < text.size()) {
      if (text[pos] != ',') {
        throw util::ParseError("schedule: expected ',' at offset " +
                               std::to_string(pos) + " in '" + text + "'");
      }
      ++pos;
    }
  }
  return schedule;
}

}  // namespace npss::mc
