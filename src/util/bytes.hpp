// Byte-buffer primitives used by the UTS codecs and the Schooner wire
// protocol. All multi-byte quantities written through ByteWriter/ByteReader
// are big-endian (network order), which is also the UTS canonical order.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace npss::util {

using Bytes = std::vector<std::uint8_t>;

/// Append-only big-endian byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes initial) : buf_(std::move(initial)) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }

  void u64(std::uint64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }

  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u32(bits);
  }

  /// Length-prefixed string (u32 length + raw bytes).
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed nested blob.
  void blob(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
  }

  /// Pre-size the buffer (compiled marshal plans know the wire size).
  void reserve(std::size_t n) { buf_.reserve(n); }

  /// Overwrite 4 bytes at `pos` with `v` (big-endian). Used for length
  /// placeholders patched once the payload size is known — the bus
  /// framer writes a frame's body directly after its prefix and fills
  /// the prefix in afterwards, avoiding an intermediate buffer.
  void patch_u32(std::size_t pos, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_[pos + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * (3 - i)));
    }
  }

  /// Roll back to an earlier size (a frame boundary) after a failed
  /// in-place encode, leaving previously written frames intact.
  void truncate(std::size_t n) { buf_.resize(n); }

  std::size_t size() const noexcept { return buf_.size(); }
  const Bytes& bytes() const& noexcept { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Sequential big-endian byte source; throws EncodingError on underflow.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v = static_cast<std::uint16_t>((v << 8) | data_[pos_ + i]);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  float f32() {
    std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes blob() {
    std::uint32_t n = u32();
    need(n);
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  std::span<const std::uint8_t> raw(std::size_t n) {
    need(n);
    auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  // Out-of-line, [[noreturn]] failure path: keeps the hot accessors tiny
  // and lets the compiler prove post-check accesses are reachable only
  // when in bounds.
  [[noreturn]] void underflow(std::size_t need_bytes) const;

  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) underflow(n);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Hex dump of a byte span, for diagnostics and tests.
std::string hex_dump(std::span<const std::uint8_t> data);

}  // namespace npss::util
