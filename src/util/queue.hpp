// A closable MPMC blocking queue. Every simulated Schooner process owns one
// as its mailbox; closing it is how a process is told to stop listening.
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace npss::util {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueue an item. Returns false (dropping the item) if closed.
  bool push(T item) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained.
  /// Returns nullopt only after close() once the queue is empty.
  std::optional<T> pop() {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) cv_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Block until an item is available, the queue is closed and drained,
  /// or `timeout` elapses. A nullopt therefore means "closed" or "timed
  /// out"; callers that need to tell them apart check closed().
  std::optional<T> pop_for(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wake all waiters; subsequent pushes are dropped, pops drain then stop.
  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_{"util.BlockingQueue"};
  CondVar cv_;
  std::deque<T> items_ SCHOONER_GUARDED_BY(mu_);
  bool closed_ SCHOONER_GUARDED_BY(mu_) = false;
};

}  // namespace npss::util
