// A closable MPMC blocking queue. Every simulated Schooner process owns one
// as its mailbox; closing it is how a process is told to stop listening.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace npss::util {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueue an item. Returns false (dropping the item) if closed.
  bool push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained.
  /// Returns nullopt only after close() once the queue is empty.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Block until an item is available, the queue is closed and drained,
  /// or `timeout` elapses. A nullopt therefore means "closed" or "timed
  /// out"; callers that need to tell them apart check closed().
  std::optional<T> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wake all waiters; subsequent pushes are dropped, pops drain then stop.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace npss::util
