// Minimal SHA-256 (FIPS 180-4), used for spec-file content hashes in the
// uts_check manifest and the kExport handshake. Self-contained so the
// toolchain needs no crypto dependency; this is an integrity fingerprint
// for stale-manifest detection, not a security boundary.
#pragma once

#include <string>
#include <string_view>

namespace npss::util {

/// Lower-case hex digest (64 chars) of `data`.
std::string sha256_hex(std::string_view data);

}  // namespace npss::util
