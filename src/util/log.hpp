// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate the Manager/Server protocol traffic the
// paper describes.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "util/mutex.hpp"

namespace npss::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  // The level is atomic: enabled() runs on every hot-path log macro in
  // every cluster thread, while set_level() may arrive from the main
  // thread mid-run.
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;
  // Serializes sink writes only — a leaf lock in the hierarchy
  // (lock_hierarchy.md): write() never takes another lock under it, so
  // logging is safe from inside any critical section.
  Mutex mu_{"util.Logger"};
  std::atomic<LogLevel> level_{LogLevel::kOff};
};

namespace detail {
inline void log_fmt(std::ostringstream&) {}

template <typename T, typename... Rest>
void log_fmt(std::ostringstream& os, T&& first, Rest&&... rest) {
  os << std::forward<T>(first);
  detail::log_fmt(os, std::forward<Rest>(rest)...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const std::string& component, Args&&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream os;
  detail::log_fmt(os, std::forward<Args>(args)...);
  logger.write(level, component, os.str());
}

#define NPSS_LOG_TRACE(component, ...) \
  ::npss::util::log(::npss::util::LogLevel::kTrace, component, __VA_ARGS__)
#define NPSS_LOG_DEBUG(component, ...) \
  ::npss::util::log(::npss::util::LogLevel::kDebug, component, __VA_ARGS__)
#define NPSS_LOG_INFO(component, ...) \
  ::npss::util::log(::npss::util::LogLevel::kInfo, component, __VA_ARGS__)
#define NPSS_LOG_WARN(component, ...) \
  ::npss::util::log(::npss::util::LogLevel::kWarn, component, __VA_ARGS__)
#define NPSS_LOG_ERROR(component, ...) \
  ::npss::util::log(::npss::util::LogLevel::kError, component, __VA_ARGS__)

}  // namespace npss::util
