// Annotated mutex / RAII-lock / condvar wrappers (DESIGN.md §16). These
// replace raw std::mutex / std::lock_guard in the concurrency core so
// that (a) clang's Thread Safety Analysis can check the locking
// contracts declared with the SCHOONER_GUARDED_BY / SCHOONER_REQUIRES
// macros, and (b) the debug-mode lock-order checker (util::lockdep) can
// observe every acquisition. Each Mutex names its lockdep class; the
// documented hierarchy lives in lock_hierarchy.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <source_location>

#include "util/thread_annotations.hpp"

#if defined(SCHOONER_LOCKDEP) && SCHOONER_LOCKDEP
#include "util/lockdep.hpp"
#endif

namespace npss::util {

/// A std::mutex with thread-safety-analysis capability attributes and
/// (in SCHOONER_LOCKDEP builds) lock-order tracking. The lock-class
/// name groups instances for ordering purposes: every BusChannel's
/// mutex is the same class, so an ordering observed on one channel
/// constrains them all.
class SCHOONER_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* lock_class = "mutex") {
#if defined(SCHOONER_LOCKDEP) && SCHOONER_LOCKDEP
    class_ = lockdep::lock_class(lock_class);
#else
    (void)lock_class;
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocking acquire. The lockdep hook runs *before* blocking so a
  /// lock-order inversion is reported instead of deadlocked on. The
  /// source_location default captures the caller's site as the edge
  /// provenance lockdep reports.
  // The wrapper bodies manipulate the unannotated std::mutex, so the
  // analysis is disabled *inside* them (the annotations still describe
  // them to callers) — the same trusted-primitive split absl::Mutex uses.
  void lock(std::source_location site = std::source_location::current())
      SCHOONER_ACQUIRE() SCHOONER_NO_THREAD_SAFETY_ANALYSIS {
#if defined(SCHOONER_LOCKDEP) && SCHOONER_LOCKDEP
    lockdep::on_acquire(class_, this, site);
#else
    (void)site;
#endif
    mu_.lock();
  }

  void unlock() SCHOONER_RELEASE() SCHOONER_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
#if defined(SCHOONER_LOCKDEP) && SCHOONER_LOCKDEP
    lockdep::on_release(class_, this);
#endif
  }

  /// Non-blocking acquire: recorded in the held stack but adds no
  /// ordering edges (it cannot deadlock).
  bool try_lock(std::source_location site = std::source_location::current())
      SCHOONER_TRY_ACQUIRE(true) SCHOONER_NO_THREAD_SAFETY_ANALYSIS {
    const bool ok = mu_.try_lock();
#if defined(SCHOONER_LOCKDEP) && SCHOONER_LOCKDEP
    if (ok) lockdep::on_try_acquire(class_, this, site);
#else
    (void)site;
#endif
    return ok;
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#if defined(SCHOONER_LOCKDEP) && SCHOONER_LOCKDEP
  const lockdep::LockClass* class_ = nullptr;
#endif
};

/// RAII scoped lock over util::Mutex — the std::lock_guard equivalent
/// the analysis understands as a scoped capability.
class SCHOONER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu,
                     std::source_location site =
                         std::source_location::current()) SCHOONER_ACQUIRE(mu)
      SCHOONER_NO_THREAD_SAFETY_ANALYSIS : mu_(&mu) {
    mu_->lock(site);
  }
  ~MutexLock() SCHOONER_RELEASE() SCHOONER_NO_THREAD_SAFETY_ANALYSIS {
    mu_->unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_;
};

/// Condition variable waiting on util::Mutex. Built on
/// condition_variable_any so waits release/reacquire through
/// Mutex::unlock/lock — the lockdep held stack stays correct across a
/// wait. Callers pass the MutexLock they hold; the analysis treats the
/// capability as held throughout (the caller-visible contract: the
/// guarded predicate may be re-read the moment wait returns).
///
/// There is deliberately no predicate-taking overload: the analysis is
/// intra-procedural, so a predicate lambda reading guarded fields would
/// need its own annotations. Callers write the while-loop at the call
/// site instead, where the lock is visibly held.
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(*lock.mu_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(*lock.mu_, tp);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(*lock.mu_, d);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace npss::util
