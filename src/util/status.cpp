#include "util/status.hpp"

namespace npss::util {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown: return "unknown";
    case ErrorCode::kTypeMismatch: return "type-mismatch";
    case ErrorCode::kRangeError: return "range-error";
    case ErrorCode::kParseError: return "parse-error";
    case ErrorCode::kEncodingError: return "encoding-error";
    case ErrorCode::kLookupFailure: return "lookup-failure";
    case ErrorCode::kStartupFailure: return "startup-failure";
    case ErrorCode::kCallFailure: return "call-failure";
    case ErrorCode::kStaleBinding: return "stale-binding";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kDuplicateName: return "duplicate-name";
    case ErrorCode::kProtocolError: return "protocol-error";
    case ErrorCode::kNoSuchMachine: return "no-such-machine";
    case ErrorCode::kNoRoute: return "no-route";
    case ErrorCode::kNoSuchImage: return "no-such-image";
    case ErrorCode::kGraphError: return "graph-error";
    case ErrorCode::kWidgetError: return "widget-error";
    case ErrorCode::kConvergenceFailure: return "convergence-failure";
    case ErrorCode::kModelError: return "model-error";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotLeader: return "not-leader";
    case ErrorCode::kLineRejected: return "line-rejected";
    case ErrorCode::kBudgetExhausted: return "budget-exhausted";
  }
  return "unknown";
}

void raise_error(ErrorCode code, const std::string& message) {
  switch (code) {
    case ErrorCode::kTypeMismatch: throw TypeMismatchError(message);
    case ErrorCode::kRangeError: throw RangeError(message);
    case ErrorCode::kParseError: throw ParseError(message);
    case ErrorCode::kEncodingError: throw EncodingError(message);
    case ErrorCode::kLookupFailure: throw LookupError(message);
    case ErrorCode::kStartupFailure: throw StartupError(message);
    case ErrorCode::kCallFailure: throw CallError(message);
    case ErrorCode::kStaleBinding: throw StaleBindingError(message);
    case ErrorCode::kShutdown: throw ShutdownError(message);
    case ErrorCode::kDuplicateName: throw DuplicateNameError(message);
    case ErrorCode::kProtocolError: throw ProtocolError(message);
    case ErrorCode::kNoSuchMachine: throw NoSuchMachineError(message);
    case ErrorCode::kNoRoute: throw NoRouteError(message);
    case ErrorCode::kNoSuchImage: throw NoSuchImageError(message);
    case ErrorCode::kGraphError: throw GraphError(message);
    case ErrorCode::kWidgetError: throw WidgetError(message);
    case ErrorCode::kConvergenceFailure: throw ConvergenceError(message);
    case ErrorCode::kModelError: throw ModelError(message);
    case ErrorCode::kDeadlineExceeded: throw DeadlineError(message);
    case ErrorCode::kUnavailable: throw UnavailableError(message);
    case ErrorCode::kNotLeader: throw NotLeaderError(message);
    case ErrorCode::kLineRejected: throw LineRejectedError(message);
    case ErrorCode::kBudgetExhausted: throw BudgetExhaustedError(message);
    case ErrorCode::kOk: break;
    case ErrorCode::kUnknown: break;
  }
  throw Error(code, message);
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  return std::string(error_code_name(code_)) + ": " + message_;
}

}  // namespace npss::util
