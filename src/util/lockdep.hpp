// Runtime lock-order checking (DESIGN.md §16), modeled on the kernel's
// lockdep. Every util::Mutex belongs to a named *lock class* (all
// Session leader-cache mutexes are one class, all BusChannel mutexes
// another, ...). While enabled, each thread keeps a stack of the lock
// classes it currently holds, and every acquisition records "held ->
// acquiring" edges in a global lock-order graph whose edges remember the
// source location that first established them. An acquisition that would
// close a cycle in that graph is a lock-order inversion — a potential
// deadlock even if this particular run would have survived — and is
// reported *at acquisition time* with both conflicting chains: the
// chain this thread is building, and the previously recorded ordering
// it contradicts.
//
// The checker itself (this header + lockdep.cpp) is always compiled, so
// tests can drive it directly in any build. The *hooks* in util::Mutex
// are only compiled in when SCHOONER_LOCKDEP is defined (CMake option,
// AUTO = on in Debug builds — the TSan/ASan CI lanes), so Release
// builds pay nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <source_location>
#include <string>
#include <vector>

namespace npss::util::lockdep {

// A named lock class, interned once per distinct name. Opaque to
// callers; compare by pointer.
struct LockClass;

/// Intern (or look up) the class named `name`. Never fails; the
/// returned pointer is stable for the life of the process.
const LockClass* lock_class(const char* name);

/// The name a class was interned under.
const std::string& class_name(const LockClass* cls);

/// An inversion report: the acquisition that would close a cycle, plus
/// both orderings in conflict.
struct Report {
  std::string summary;  ///< one line: "lock-order inversion: B -> A ..."
  /// The acquiring thread's chain: every lock it currently holds (in
  /// acquisition order, with the site each was taken at) plus the lock
  /// it is trying to take.
  std::vector<std::string> acquiring_chain;
  /// The previously recorded ordering this acquisition contradicts: the
  /// edge path from the acquiring class back to a held class, each edge
  /// stamped with the site that first established it.
  std::vector<std::string> prior_chain;

  std::string to_string() const;
};

/// Called when an inversion is detected, while NO lockdep-internal lock
/// is held (the handler may log, throw, or record). The default handler
/// writes the report to stderr — and to the file named by the
/// SCHOONER_LOCKDEP_REPORT environment variable, if set, so CI can
/// upload it as an artifact — then aborts. Tests install a capturing
/// handler; passing nullptr restores the default.
using Handler = std::function<void(const Report&)>;
void set_handler(Handler handler);

/// Record that the calling thread is about to acquire an instance of
/// `cls`. Checks for ordering violations against the thread's held
/// stack *before* the caller blocks on the real mutex, so an inversion
/// is reported rather than deadlocked on.
void on_acquire(const LockClass* cls, const void* instance,
                std::source_location site = std::source_location::current());

/// Record a successful try_lock. Adds a held-stack entry but no
/// ordering edges: a non-blocking acquisition cannot deadlock, so it
/// does not constrain the hierarchy.
void on_try_acquire(
    const LockClass* cls, const void* instance,
    std::source_location site = std::source_location::current());

/// Record the release of `instance`. Releases need not be LIFO.
void on_release(const LockClass* cls, const void* instance);

/// Diagnostics / test hooks.
std::size_t class_count();
std::size_t edge_count();
std::uint64_t inversions_detected();
std::size_t held_count();  ///< calling thread's current held-stack depth

/// The recorded ordering graph, one "A -> B  (first: file:line)" line
/// per edge, sorted — what lock_hierarchy.md documents, as observed.
std::string graph_text();

/// Drop all recorded edges, counters, and the calling thread's held
/// stack (interned classes survive; pointers stay valid). Tests call
/// this between cases; real code never should.
void reset();

}  // namespace npss::util::lockdep
