// Error and status primitives shared across the NPSS/Schooner reproduction.
//
// The original Schooner was C with errno-style returns; here errors that a
// caller is expected to handle programmatically travel as exceptions derived
// from npss::util::Error, each carrying a stable ErrorCode so tests can pin
// the *category* of a failure (e.g. the Cray out-of-range policy) and not
// just its message text.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace npss::util {

/// Stable machine-readable categories for failures surfaced by the library.
enum class ErrorCode {
  kUnknown = 0,
  // UTS / marshaling
  kTypeMismatch,     ///< import/export signatures or value/type disagree
  kRangeError,       ///< value not representable in the target format
  kParseError,       ///< malformed UTS specification text
  kEncodingError,    ///< malformed canonical byte stream
  // Schooner runtime
  kLookupFailure,    ///< procedure name not bound in the caller's line
  kStartupFailure,   ///< Server could not instantiate a program image
  kCallFailure,      ///< transport- or peer-level RPC failure
  kStaleBinding,     ///< call reached a machine that no longer hosts the proc
  kShutdown,         ///< the line (or peer) has been terminated
  kDuplicateName,    ///< second same-named export within one line
  kProtocolError,    ///< unexpected message sequence
  // Virtual cluster
  kNoSuchMachine,
  kNoRoute,
  kNoSuchImage,      ///< executable path not present on the target machine
  // Flow executive
  kGraphError,       ///< bad module/port wiring
  kWidgetError,
  // TESS
  kConvergenceFailure,
  kModelError,
  // Fault-tolerant call path (appended; wire-encoded as integers, so new
  // codes must only ever be added at the end)
  kDeadlineExceeded, ///< call deadline elapsed before a reply arrived
  kUnavailable,      ///< peer unreachable after every recovery attempt
  kOk,               ///< success sentinel for Status (never thrown)
  // Replicated control plane (appended)
  kNotLeader,        ///< request reached a Manager follower, not the leader
  // Multi-tenant session layer (appended)
  kLineRejected,     ///< Manager admission control refused the new line
  kBudgetExhausted,  ///< the line's fault budget is spent; call refused
};

/// Human-readable name for an ErrorCode (used in messages and logs).
std::string_view error_code_name(ErrorCode code);

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " +
                           message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Convenience subclasses so call sites can catch narrow categories.
#define NPSS_DEFINE_ERROR(Name, Code)                       \
  class Name : public Error {                               \
   public:                                                  \
    explicit Name(const std::string& message)               \
        : Error(ErrorCode::Code, message) {}                \
  }

NPSS_DEFINE_ERROR(TypeMismatchError, kTypeMismatch);
NPSS_DEFINE_ERROR(RangeError, kRangeError);
NPSS_DEFINE_ERROR(ParseError, kParseError);
NPSS_DEFINE_ERROR(EncodingError, kEncodingError);
NPSS_DEFINE_ERROR(LookupError, kLookupFailure);
NPSS_DEFINE_ERROR(StartupError, kStartupFailure);
NPSS_DEFINE_ERROR(CallError, kCallFailure);
NPSS_DEFINE_ERROR(StaleBindingError, kStaleBinding);
NPSS_DEFINE_ERROR(ShutdownError, kShutdown);
NPSS_DEFINE_ERROR(DuplicateNameError, kDuplicateName);
NPSS_DEFINE_ERROR(ProtocolError, kProtocolError);
NPSS_DEFINE_ERROR(NoSuchMachineError, kNoSuchMachine);
NPSS_DEFINE_ERROR(NoRouteError, kNoRoute);
NPSS_DEFINE_ERROR(NoSuchImageError, kNoSuchImage);
NPSS_DEFINE_ERROR(GraphError, kGraphError);
NPSS_DEFINE_ERROR(WidgetError, kWidgetError);
NPSS_DEFINE_ERROR(ConvergenceError, kConvergenceFailure);
NPSS_DEFINE_ERROR(ModelError, kModelError);
NPSS_DEFINE_ERROR(DeadlineError, kDeadlineExceeded);
NPSS_DEFINE_ERROR(UnavailableError, kUnavailable);
NPSS_DEFINE_ERROR(NotLeaderError, kNotLeader);
NPSS_DEFINE_ERROR(LineRejectedError, kLineRejected);
NPSS_DEFINE_ERROR(BudgetExhaustedError, kBudgetExhausted);

#undef NPSS_DEFINE_ERROR

/// Throw the concrete Error subclass for `code` (so wire-transported
/// errors re-raise with their original type and remain catchable by
/// category on the far side).
[[noreturn]] void raise_error(ErrorCode code, const std::string& message);

/// A failure carried as a value rather than an exception — the result
/// half of the fault-tolerant call API. Unlike Error (which a caller must
/// catch), a Status travels inside CallResult so transport failures,
/// deadline expiry, and peer errors are ordinary data the caller can
/// branch on, and only re-raise (as the original Error subclass) when it
/// opts into the legacy throwing surface.
class Status {
 public:
  Status() = default;  ///< OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  /// Capture an Error; the "<code-name>: " prefix what() embeds is
  /// stripped so raise_if_error() does not stack a second copy.
  static Status from(const Error& e) {
    std::string_view name = error_code_name(e.code());
    std::string msg = e.what();
    if (msg.size() > name.size() + 2 && msg.starts_with(name) &&
        msg.compare(name.size(), 2, ": ") == 0) {
      msg.erase(0, name.size() + 2);
    }
    return Status(e.code(), std::move(msg));
  }

  bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// Throw the matching Error subclass; no-op when OK.
  void raise_if_error() const {
    if (!is_ok()) raise_error(code_, message_);
  }

  /// "ok" or "<code-name>: <message>".
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

}  // namespace npss::util
