// Error and status primitives shared across the NPSS/Schooner reproduction.
//
// The original Schooner was C with errno-style returns; here errors that a
// caller is expected to handle programmatically travel as exceptions derived
// from npss::util::Error, each carrying a stable ErrorCode so tests can pin
// the *category* of a failure (e.g. the Cray out-of-range policy) and not
// just its message text.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace npss::util {

/// Stable machine-readable categories for failures surfaced by the library.
enum class ErrorCode {
  kUnknown = 0,
  // UTS / marshaling
  kTypeMismatch,     ///< import/export signatures or value/type disagree
  kRangeError,       ///< value not representable in the target format
  kParseError,       ///< malformed UTS specification text
  kEncodingError,    ///< malformed canonical byte stream
  // Schooner runtime
  kLookupFailure,    ///< procedure name not bound in the caller's line
  kStartupFailure,   ///< Server could not instantiate a program image
  kCallFailure,      ///< transport- or peer-level RPC failure
  kStaleBinding,     ///< call reached a machine that no longer hosts the proc
  kShutdown,         ///< the line (or peer) has been terminated
  kDuplicateName,    ///< second same-named export within one line
  kProtocolError,    ///< unexpected message sequence
  // Virtual cluster
  kNoSuchMachine,
  kNoRoute,
  kNoSuchImage,      ///< executable path not present on the target machine
  // Flow executive
  kGraphError,       ///< bad module/port wiring
  kWidgetError,
  // TESS
  kConvergenceFailure,
  kModelError,
};

/// Human-readable name for an ErrorCode (used in messages and logs).
std::string_view error_code_name(ErrorCode code);

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " +
                           message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Convenience subclasses so call sites can catch narrow categories.
#define NPSS_DEFINE_ERROR(Name, Code)                       \
  class Name : public Error {                               \
   public:                                                  \
    explicit Name(const std::string& message)               \
        : Error(ErrorCode::Code, message) {}                \
  }

NPSS_DEFINE_ERROR(TypeMismatchError, kTypeMismatch);
NPSS_DEFINE_ERROR(RangeError, kRangeError);
NPSS_DEFINE_ERROR(ParseError, kParseError);
NPSS_DEFINE_ERROR(EncodingError, kEncodingError);
NPSS_DEFINE_ERROR(LookupError, kLookupFailure);
NPSS_DEFINE_ERROR(StartupError, kStartupFailure);
NPSS_DEFINE_ERROR(CallError, kCallFailure);
NPSS_DEFINE_ERROR(StaleBindingError, kStaleBinding);
NPSS_DEFINE_ERROR(ShutdownError, kShutdown);
NPSS_DEFINE_ERROR(DuplicateNameError, kDuplicateName);
NPSS_DEFINE_ERROR(ProtocolError, kProtocolError);
NPSS_DEFINE_ERROR(NoSuchMachineError, kNoSuchMachine);
NPSS_DEFINE_ERROR(NoRouteError, kNoRoute);
NPSS_DEFINE_ERROR(NoSuchImageError, kNoSuchImage);
NPSS_DEFINE_ERROR(GraphError, kGraphError);
NPSS_DEFINE_ERROR(WidgetError, kWidgetError);
NPSS_DEFINE_ERROR(ConvergenceError, kConvergenceFailure);
NPSS_DEFINE_ERROR(ModelError, kModelError);

#undef NPSS_DEFINE_ERROR

/// Throw the concrete Error subclass for `code` (so wire-transported
/// errors re-raise with their original type and remain catchable by
/// category on the far side).
[[noreturn]] void raise_error(ErrorCode code, const std::string& message);

}  // namespace npss::util
