// Clang Thread Safety Analysis attribute macros (DESIGN.md §16). The
// concurrency core annotates every shared field with the mutex that
// guards it and every locking function with what it acquires, releases,
// or requires; under clang the whole tree then compiles with
// -Wthread-safety and the CI thread-safety lane promotes violations to
// errors. Under other compilers (the default g++ build) every macro
// expands to nothing, so the annotations are pure documentation there.
//
// Naming follows the attribute vocabulary of the analysis itself
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed to
// keep them greppable and to avoid colliding with abseil-style macros a
// vendored dependency might define.
#pragma once

#if defined(__clang__)
#define SCHOONER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SCHOONER_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a capability (a lock). `x` is the name the analysis
/// uses in diagnostics, e.g. SCHOONER_CAPABILITY("mutex").
#define SCHOONER_CAPABILITY(x) SCHOONER_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (util::MutexLock).
#define SCHOONER_SCOPED_CAPABILITY \
  SCHOONER_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define SCHOONER_GUARDED_BY(x) SCHOONER_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is guarded by `x` (the pointer itself
/// may be read freely).
#define SCHOONER_PT_GUARDED_BY(x) SCHOONER_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called while already holding the listed
/// capabilities; it does not acquire or release them. Used on private
/// helpers called under the lock (e.g. FairQueue::take).
#define SCHOONER_REQUIRES(...) \
  SCHOONER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define SCHOONER_ACQUIRE(...) \
  SCHOONER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (which must be held on entry).
#define SCHOONER_RELEASE(...) \
  SCHOONER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the acquisition and returns `result` on success.
#define SCHOONER_TRY_ACQUIRE(...) \
  SCHOONER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the listed capabilities
/// (it acquires them itself; calling with them held would deadlock).
#define SCHOONER_EXCLUDES(...) \
  SCHOONER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability (accessor used
/// in other annotations).
#define SCHOONER_RETURN_CAPABILITY(x) \
  SCHOONER_THREAD_ANNOTATION(lock_returned(x))

/// Runtime assertion that the calling thread holds `x`; informs the
/// analysis without acquiring anything.
#define SCHOONER_ASSERT_CAPABILITY(x) \
  SCHOONER_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch for functions whose locking is deliberately outside the
/// analysis (e.g. lock-free fences the checker cannot model). Use
/// sparingly and document why at each site.
#define SCHOONER_NO_THREAD_SAFETY_ANALYSIS \
  SCHOONER_THREAD_ANNOTATION(no_thread_safety_analysis)
