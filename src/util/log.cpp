#include "util/log.hpp"

#include <cstdio>

namespace npss::util {

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  MutexLock lock(mu_);
  std::fprintf(stderr, "[%s] %-10s %s\n", level_tag(level), component.c_str(),
               message.c_str());
}

}  // namespace npss::util
