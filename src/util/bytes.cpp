#include "util/bytes.hpp"

namespace npss::util {

void ByteReader::underflow(std::size_t need_bytes) const {
  throw EncodingError("byte stream underflow: need " +
                      std::to_string(need_bytes) + " bytes, have " +
                      std::to_string(remaining()));
}

std::string hex_dump(std::span<const std::uint8_t> data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 3);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(digits[data[i] >> 4]);
    out.push_back(digits[data[i] & 0xf]);
  }
  return out;
}

}  // namespace npss::util
