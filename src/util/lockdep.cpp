#include "util/lockdep.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

namespace npss::util::lockdep {

struct LockClass {
  std::string name;
  // Recorded orderings out of this class: target class -> the site that
  // first established the edge. Guarded by the registry mutex.
  std::map<const LockClass*, std::string> out;
};

namespace {

// All lockdep-internal state hangs off deliberately leaked heap objects:
// lockdep is invoked from static-storage mutexes (singleton registries,
// the TcpBus pool) whose last unlocks can run during static destruction,
// after normal globals are gone.
struct Registry {
  std::mutex mu;  // raw std::mutex: lockdep must not instrument itself
  std::map<std::string, LockClass*> classes;
  std::size_t edges = 0;
  std::atomic<std::uint64_t> inversions{0};
  Handler handler;  // empty = default report-and-abort
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

struct Held {
  const LockClass* cls;
  const void* instance;
  std::string site;
};

std::vector<Held>& held_stack() {
  // Leaked per thread for the same static-destruction reason as the
  // registry: a thread_local vector could be destroyed before the last
  // static mutex this thread releases.
  thread_local std::vector<Held>* held = new std::vector<Held>();
  return *held;
}

std::string format_site(const std::source_location& site) {
  const char* file = site.file_name();
  // Trim to the path tail; full build paths just add noise.
  for (const char* p = file; *p; ++p) {
    if ((*p == '/' || *p == '\\') && p[1]) file = p + 1;
  }
  return std::string(file) + ":" + std::to_string(site.line());
}

// Depth-first search for a recorded path `from ->* to`, appending the
// traversed edges ("A -> B  (first: site)") to `path` when found.
// Caller holds registry().mu.
bool find_path(const LockClass* from, const LockClass* to,
               std::set<const LockClass*>& visited,
               std::vector<std::string>& path) {
  if (!visited.insert(from).second) return false;
  for (const auto& [next, site] : from->out) {
    std::string edge = class_name(from) + " -> " + class_name(next) +
                       "  (first: " + site + ")";
    if (next == to) {
      path.push_back(std::move(edge));
      return true;
    }
    path.push_back(std::move(edge));
    if (find_path(next, to, visited, path)) return true;
    path.pop_back();
  }
  return false;
}

void default_handler(const Report& report) {
  std::string text = report.to_string();
  std::fprintf(stderr, "%s", text.c_str());
  std::fflush(stderr);
  if (const char* out = std::getenv("SCHOONER_LOCKDEP_REPORT")) {
    if (std::FILE* f = std::fopen(out, "a")) {
      std::fputs(text.c_str(), f);
      std::fclose(f);
    }
  }
  std::abort();
}

void record(const LockClass* cls, const void* instance,
            const std::source_location& site, bool order_edges) {
  auto& held = held_stack();
  std::string at = format_site(site);

  if (order_edges && !held.empty()) {
    Report report;
    Handler handler;
    {
      std::lock_guard lock(registry().mu);
      for (const Held& h : held) {
        if (h.cls == cls) continue;  // same-class nesting: no self-edges
        // Would recording h.cls -> cls close a cycle? Check for a path
        // the other way before inserting.
        std::set<const LockClass*> visited;
        std::vector<std::string> path;
        if (find_path(cls, h.cls, visited, path)) {
          registry().inversions.fetch_add(1, std::memory_order_relaxed);
          report.summary = "lockdep: lock-order inversion acquiring '" +
                           class_name(cls) + "' at " + at +
                           " while holding '" + class_name(h.cls) + "'";
          for (const Held& g : held) {
            report.acquiring_chain.push_back(class_name(g.cls) +
                                             "  (acquired at " + g.site + ")");
          }
          report.acquiring_chain.push_back(class_name(cls) +
                                           "  (acquiring at " + at + ")");
          report.prior_chain = std::move(path);
          handler = registry().handler;
          break;
        }
        auto [it, fresh] = const_cast<LockClass*>(h.cls)->out.try_emplace(
            cls, at);
        (void)it;
        if (fresh) ++registry().edges;
      }
    }
    if (!report.summary.empty()) {
      // Handler runs outside the registry lock so it may call back into
      // lockdep (graph_text, reset) or log through an instrumented path.
      if (handler) {
        handler(report);
      } else {
        default_handler(report);
      }
    }
  }

  held.push_back(Held{cls, instance, std::move(at)});
}

}  // namespace

const LockClass* lock_class(const char* name) {
  std::lock_guard lock(registry().mu);
  auto it = registry().classes.find(name);
  if (it != registry().classes.end()) return it->second;
  auto* cls = new LockClass();  // interned forever
  cls->name = name;
  registry().classes.emplace(cls->name, cls);
  return cls;
}

const std::string& class_name(const LockClass* cls) { return cls->name; }

std::string Report::to_string() const {
  std::ostringstream os;
  os << summary << "\n";
  os << "  this thread is acquiring (in order):\n";
  for (const auto& line : acquiring_chain) os << "    " << line << "\n";
  os << "  which contradicts the recorded ordering:\n";
  for (const auto& line : prior_chain) os << "    " << line << "\n";
  return os.str();
}

void set_handler(Handler handler) {
  std::lock_guard lock(registry().mu);
  registry().handler = std::move(handler);
}

void on_acquire(const LockClass* cls, const void* instance,
                std::source_location site) {
  record(cls, instance, site, /*order_edges=*/true);
}

void on_try_acquire(const LockClass* cls, const void* instance,
                    std::source_location site) {
  record(cls, instance, site, /*order_edges=*/false);
}

void on_release(const LockClass* cls, const void* instance) {
  auto& held = held_stack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->instance == instance && it->cls == cls) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Unmatched release: the lock predates a reset() or lockdep was
  // enabled mid-stream. Ignore rather than abort — the graph only ever
  // under-approximates in that case.
}

std::size_t class_count() {
  std::lock_guard lock(registry().mu);
  return registry().classes.size();
}

std::size_t edge_count() {
  std::lock_guard lock(registry().mu);
  return registry().edges;
}

std::uint64_t inversions_detected() {
  return registry().inversions.load(std::memory_order_relaxed);
}

std::size_t held_count() { return held_stack().size(); }

std::string graph_text() {
  std::lock_guard lock(registry().mu);
  std::ostringstream os;
  for (const auto& [name, cls] : registry().classes) {
    for (const auto& [next, site] : cls->out) {
      os << name << " -> " << class_name(next) << "  (first: " << site
         << ")\n";
    }
  }
  return os.str();
}

void reset() {
  std::lock_guard lock(registry().mu);
  for (auto& [name, cls] : registry().classes) cls->out.clear();
  registry().edges = 0;
  registry().inversions.store(0, std::memory_order_relaxed);
  held_stack().clear();
}

}  // namespace npss::util::lockdep
