// A closable MPMC blocking queue that is *fair across keys*: items are
// FIFO within a key, and pop() drains keys round-robin. Procedure-host
// worker pools key work by line id, so one line flooding the host (a
// retry storm, a deadline stampede) can delay its own queued calls but
// advances the round-robin cursor past it once per turn — neighbors keep
// their service rate. Same close semantics as util::BlockingQueue:
// close() wakes every waiter, pushes after close are dropped, pops drain
// the remaining items (still round-robin) and then return nullopt.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace npss::util {

template <typename T>
class FairQueue {
 public:
  FairQueue() = default;
  FairQueue(const FairQueue&) = delete;
  FairQueue& operator=(const FairQueue&) = delete;

  /// Enqueue an item under `key` (FIFO within the key). Returns false
  /// (dropping the item) if closed.
  bool push(std::int64_t key, T item) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      auto [it, fresh] = lanes_.try_emplace(key);
      it->second.push_back(std::move(item));
      if (fresh || it->second.size() == 1) enlist(key);
      ++size_;
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained.
  /// Pops rotate across keys: each call serves the next non-empty lane.
  std::optional<T> pop() {
    MutexLock lock(mu_);
    while (!closed_ && size_ == 0) cv_.wait(lock);
    return take();
  }

  /// Like pop(), bounded by `timeout`. nullopt means closed-and-drained
  /// or timed out; callers that need to tell them apart check closed().
  std::optional<T> pop_for(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (!closed_ && size_ == 0) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    return take();
  }

  /// Wake all waiters; subsequent pushes are dropped, pops drain then stop.
  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return size_;
  }

  /// Keys currently holding queued items (diagnostic).
  std::size_t active_keys() const {
    MutexLock lock(mu_);
    return rr_.size();
  }

 private:
  // Append `key` to the round-robin ring. Precondition: its lane just
  // became non-empty (a lane is enlisted at most once).
  void enlist(std::int64_t key) SCHOONER_REQUIRES(mu_) { rr_.push_back(key); }

  std::optional<T> take() SCHOONER_REQUIRES(mu_) {
    if (size_ == 0) return std::nullopt;
    // Serve the lane at the cursor; skip (and drop) entries whose lane
    // emptied — lanes are only ever enlisted while non-empty, so each
    // ring entry matches at least the pushes since its enlisting.
    while (true) {
      std::int64_t key = rr_.front();
      rr_.pop_front();
      auto it = lanes_.find(key);
      if (it == lanes_.end() || it->second.empty()) continue;
      T item = std::move(it->second.front());
      it->second.pop_front();
      --size_;
      if (it->second.empty()) {
        lanes_.erase(it);  // keep the map bounded by *active* lines
      } else {
        rr_.push_back(key);  // more queued: back of the ring
      }
      return item;
    }
  }

  mutable Mutex mu_{"util.FairQueue"};
  CondVar cv_;
  std::map<std::int64_t, std::deque<T>> lanes_ SCHOONER_GUARDED_BY(mu_);
  std::deque<std::int64_t> rr_ SCHOONER_GUARDED_BY(
      mu_);  ///< keys with queued items, service order
  std::size_t size_ SCHOONER_GUARDED_BY(mu_) = 0;
  bool closed_ SCHOONER_GUARDED_BY(mu_) = false;
};

}  // namespace npss::util
