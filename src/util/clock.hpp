// Virtual-time primitives for the simulated cluster.
//
// Every simulated process carries a VirtualClock measured in microseconds of
// simulated wall time. Message delivery advances clocks by link latency plus
// serialization delay; a receiver's clock joins (max) with the message
// timestamp, the standard conservative virtual-time rule. Because each
// Schooner line is sequential (callers block on replies), per-line elapsed
// virtual time is deterministic regardless of host thread scheduling.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace npss::util {

/// Simulated microseconds.
using SimTime = std::int64_t;

constexpr SimTime sim_us(double us) { return static_cast<SimTime>(us); }
constexpr SimTime sim_ms(double ms) {
  return static_cast<SimTime>(ms * 1000.0);
}
constexpr double sim_to_ms(SimTime t) {
  return static_cast<double>(t) / 1000.0;
}

/// Monotone virtual clock. Thread-safe: a process's clock may be advanced by
/// the delivery of a message while the owner reads it.
class VirtualClock {
 public:
  explicit VirtualClock(SimTime start = 0) : now_(start) {}

  SimTime now() const noexcept { return now_.load(std::memory_order_acquire); }

  /// Advance by a strictly local delay (compute time, think time).
  void advance(SimTime delta) noexcept {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }

  /// Join with an external timestamp: now = max(now, t).
  void join(SimTime t) noexcept {
    SimTime cur = now_.load(std::memory_order_acquire);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
    }
  }

  void reset(SimTime t = 0) noexcept {
    now_.store(t, std::memory_order_release);
  }

 private:
  std::atomic<SimTime> now_;
};

/// Real-time stopwatch for the benches that report host CPU/wall time next
/// to virtual network time.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  double elapsed_ms() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace npss::util
