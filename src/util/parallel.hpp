// A minimal fork-join parallel_for. The paper's Figure 1 shows a parallel
// algorithm encapsulated inside one Schooner procedure (e.g. PVM on a
// workstation cluster, or a node program on the i860/CM-5); this is the
// in-process equivalent those simulated "parallel machine" procedures use
// for their inner loops. The flow executive's wavefront scheduler also
// runs same-level modules through it.
#pragma once

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

namespace npss::util {

/// Invoke fn(begin..end) across up to `threads` workers in contiguous
/// chunks; joins before returning. `threads` <= 0 means hardware
/// concurrency. Safe for any fn without cross-iteration dependencies.
/// If a worker throws, the first exception is captured and rethrown on
/// the calling thread after all workers join (an exception escaping a
/// jthread body would std::terminate); remaining workers stop at their
/// next chunk boundary.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& fn,
                         int threads = 0) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  std::size_t workers = threads > 0
                            ? static_cast<std::size_t>(threads)
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, count);
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Stack-local leaf lock: lives only for this fork-join, and the
  // workers take nothing else while holding it.
  std::exception_ptr first_error;
  Mutex error_mu{"util.parallel_for.error"};
  std::atomic<bool> failed{false};
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    const std::size_t chunk = (count + workers - 1) / workers;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t lo = begin + w * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      if (lo >= hi) break;
      pool.emplace_back([lo, hi, &fn, &first_error, &error_mu, &failed] {
        try {
          for (std::size_t i = lo; i < hi; ++i) {
            if (failed.load(std::memory_order_relaxed)) return;
            fn(i);
          }
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          MutexLock lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
  }  // jthread join
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace npss::util
