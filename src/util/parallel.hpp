// A minimal fork-join parallel_for. The paper's Figure 1 shows a parallel
// algorithm encapsulated inside one Schooner procedure (e.g. PVM on a
// workstation cluster, or a node program on the i860/CM-5); this is the
// in-process equivalent those simulated "parallel machine" procedures use
// for their inner loops.
#pragma once

#include <algorithm>
#include <functional>
#include <thread>
#include <vector>

namespace npss::util {

/// Invoke fn(begin..end) across up to `threads` workers in contiguous
/// chunks; joins before returning. `threads` <= 0 means hardware
/// concurrency. Safe for any fn without cross-iteration dependencies.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& fn,
                         int threads = 0) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  std::size_t workers = threads > 0
                            ? static_cast<std::size_t>(threads)
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, count);
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::jthread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
}

}  // namespace npss::util
