// Failure injection — §2.4's "test operation of the engine in the
// presence of failures".
//
// A FailureInjector wraps a ComponentHooks set and degrades selected
// components; knobs can be flipped at any moment (e.g. between transient
// steps) so failures can strike mid-run. The wrapper composes with the
// remote backends: failures can be injected into a simulation whose
// components execute across the virtual network.
#pragma once

#include <map>

#include "tess/remote_seam.hpp"

namespace npss::tess {

class FailureInjector {
 public:
  explicit FailureInjector(ComponentHooks base) : base_(std::move(base)) {}

  /// Hooks with the current failure state applied (reads the injector's
  /// live knobs on every call, so later set_* calls affect in-flight
  /// simulations immediately).
  ComponentHooks hooks();

  /// Combustion efficiency multiplier (1 = healthy, 0.7 = degraded burn,
  /// 0 = flameout).
  void set_combustor_efficiency_factor(double factor) {
    combustor_eff_factor_ = factor;
  }

  /// Additional fractional total-pressure loss in a duct instance
  /// (damage / partial blockage).
  void set_duct_extra_loss(int instance, double dp_extra) {
    duct_extra_loss_[instance] = dp_extra;
  }

  /// Effective nozzle area multiplier (stuck or damaged nozzle).
  void set_nozzle_area_factor(double factor) { nozzle_area_factor_ = factor; }

  /// Parasitic friction power [W] on a spool (bearing failure).
  void set_shaft_friction_power(int spool, double watts) {
    shaft_friction_[spool] = watts;
  }

  /// Restore everything to healthy.
  void clear();

  double combustor_efficiency_factor() const { return combustor_eff_factor_; }
  double nozzle_area_factor() const { return nozzle_area_factor_; }

 private:
  ComponentHooks base_;
  double combustor_eff_factor_ = 1.0;
  double nozzle_area_factor_ = 1.0;
  std::map<int, double> duct_extra_loss_;
  std::map<int, double> shaft_friction_;
};

}  // namespace npss::tess
