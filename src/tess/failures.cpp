#include "tess/failures.hpp"

#include <algorithm>

namespace npss::tess {

ComponentHooks FailureInjector::hooks() {
  ComponentHooks wrapped;
  FailureInjector* self = this;
  const ComponentHooks base = base_;

  wrapped.duct = [self, base](int instance, const StationArray& in,
                              double dp) {
    auto it = self->duct_extra_loss_.find(instance);
    if (it != self->duct_extra_loss_.end()) {
      // Losses compound: (1 - dp_total) = (1 - dp)(1 - dp_extra).
      dp = 1.0 - (1.0 - dp) * (1.0 - it->second);
    }
    return base.duct(instance, in, dp);
  };

  wrapped.combustor = [self, base](int instance, const StationArray& in,
                                   double wf, double eff, double dp) {
    return base.combustor(instance, in,
                          wf, eff * self->combustor_eff_factor_, dp);
  };

  wrapped.nozzle = [self, base](int instance, const StationArray& in,
                                double area, double pamb) {
    return base.nozzle(instance, in, area * self->nozzle_area_factor_, pamb);
  };

  wrapped.setshaft = base.setshaft;

  wrapped.shaft = [self, base](int spool, const StationArray& ecom,
                               int incom, const StationArray& etur,
                               int intur, double ecorr, double xspool,
                               double xmyi) {
    auto it = self->shaft_friction_.find(spool);
    if (it == self->shaft_friction_.end() || it->second == 0.0) {
      return base.shaft(spool, ecom, incom, etur, intur, ecorr, xspool,
                        xmyi);
    }
    // Bearing drag absorbs delivered turbine power before it reaches the
    // compressor.
    StationArray degraded = etur;
    degraded[0] = std::max(degraded[0] - it->second, 0.0);
    return base.shaft(spool, ecom, incom, degraded, intur, ecorr, xspool,
                      xmyi);
  };

  return wrapped;
}

void FailureInjector::clear() {
  combustor_eff_factor_ = 1.0;
  nozzle_area_factor_ = 1.0;
  duct_extra_loss_.clear();
  shaft_friction_.clear();
}

}  // namespace npss::tess
