// TESS engine component calculations.
//
// Each component is a pure function from upstream state + parameters to
// downstream state. The four components the paper adapted for remote
// execution — shaft, duct, combustor, nozzle (§3.3) — additionally have
// "procedure" wrappers with the paper's argument shape (flat arrays and
// scalars, Fortran-style), which is exactly what crosses Schooner in the
// T1/T2 experiments; see tess/remote_seam.hpp.
#pragma once

#include "tess/gas.hpp"
#include "tess/maps.hpp"

namespace npss::tess {

/// Convert spool speed [rpm] and moment of inertia [kg m^2] bookkeeping.
constexpr double kRpmToRad = 2.0 * 3.14159265358979323846 / 60.0;

// --- Inlet -----------------------------------------------------------------

struct InletResult {
  GasState out;
  double ram_drag = 0.0;  ///< [N]
};

/// MIL-E-5008B-style ram recovery applied to free-stream total conditions.
InletResult inlet(const FlightCondition& flight, double mass_flow);

// --- Duct (adapted module) ---------------------------------------------------

/// Total-pressure-loss duct (also used for the bypass and the tailpipe).
GasState duct(const GasState& in, double dp_fraction);

// --- Bleed -----------------------------------------------------------------

struct BleedResult {
  GasState out;       ///< main stream after extraction
  GasState bleed;     ///< extracted stream
};

BleedResult bleed(const GasState& in, double fraction);

// --- Compressor --------------------------------------------------------------

struct CompressorResult {
  GasState out;
  double power = 0.0;        ///< absorbed shaft power [W]
  double torque = 0.0;       ///< [N m] at the given speed
  CompressorPoint point;     ///< map operating point
  double surge_margin = 0.0;
};

/// Operate a compressor at spool speed N [rpm] passing mass flow in.W;
/// the map supplies PR and efficiency at that (corrected speed, flow).
CompressorResult compressor(const GasState& in, const CompressorMap& map,
                            double n_rpm, double n_design_rpm);

// --- Combustor (adapted module) ----------------------------------------------

struct CombustorResult {
  GasState out;
  double fuel_flow = 0.0;  ///< [kg/s]
};

/// Burn `fuel_flow` kg/s at efficiency `eff` with total-pressure loss
/// `dp_fraction`; exit temperature from the energy balance.
CombustorResult combustor(const GasState& in, double fuel_flow, double eff,
                          double dp_fraction);

/// Inverse mode: find the fuel flow reaching exit temperature `t4`.
CombustorResult combustor_to_temperature(const GasState& in, double t4,
                                         double eff, double dp_fraction);

// --- Turbine ----------------------------------------------------------------

struct TurbineResult {
  GasState out;
  double power = 0.0;         ///< delivered shaft power [W]
  double torque = 0.0;        ///< [N m]
  TurbinePoint point;
  double flow_demand = 0.0;   ///< corrected flow the map wants [kg/s]
};

/// Expand through pressure ratio `pr` (>1) at spool speed N [rpm].
TurbineResult turbine(const GasState& in, const TurbineMap& map, double pr,
                      double n_rpm, double n_design_rpm);

// --- Mixing volume -------------------------------------------------------------

struct MixerResult {
  GasState out;
  double pressure_imbalance = 0.0;  ///< (Pt_a - Pt_b)/Pt_a; 0 when matched
};

/// Constant-area-style mixer: enthalpy/mass balance for the outlet state,
/// with the total-pressure imbalance reported as a solver residual (the
/// streams must arrive pressure-matched).
MixerResult mix(const GasState& a, const GasState& b, double dp_fraction);

/// Intercomponent volume pressure dynamics: dPt/dt from mass imbalance.
double volume_dpdt(const GasState& state, double volume_m3, double w_in,
                   double w_out);

// --- Nozzle (adapted module) --------------------------------------------------

struct NozzleResult {
  double w_required = 0.0;    ///< mass flow the nozzle passes [kg/s]
  double thrust = 0.0;        ///< gross thrust [N]
  double exit_velocity = 0.0; ///< [m/s]
  bool choked = false;
};

/// Convergent nozzle of throat area `area_m2` exhausting to `p_ambient`.
NozzleResult nozzle(const GasState& in, double area_m2, double p_ambient);

// --- Shaft (adapted module) -----------------------------------------------------

/// The paper's setshaft: called once at the start of a steady-state
/// computation. Derives the power-correction factor from the compressor
/// and turbine energy terms (mechanical/windage losses).
///   ecom/etur: [power W, mass flow, dh, efficiency] per the glue layer.
double setshaft(const double ecom[4], int incom, const double etur[4],
                int intur);

/// The paper's shaft: spool acceleration [rpm/s] from the energy terms.
///   xspool: spool speed [rpm]; xmyi: polar moment of inertia [kg m^2].
double shaft(const double ecom[4], int incom, const double etur[4], int intur,
             double ecorr, double xspool, double xmyi);

}  // namespace npss::tess
