#include "tess/hifi_duct.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"
#include "util/status.hpp"

namespace npss::tess {

namespace {

struct Grid {
  int nx, ny;
  std::vector<double> psi;  // (ny+1) x (nx+1) row-major

  double& at(int j, int i) { return psi[j * (nx + 1) + i]; }
  double at(int j, int i) const { return psi[j * (nx + 1) + i]; }
};

double half_height(const HifiDuctConfig& cfg, double x_frac) {
  return 1.0 + cfg.contour * x_frac;
}

/// Jacobi relaxation of a(x) psi_xx + psi_yy = 0 (channel-metric
/// Laplacian), double-buffered so sweeps are deterministic and safely
/// data-parallel across rows.
double relax(const HifiDuctConfig& cfg, Grid& grid) {
  const int nx = cfg.nx, ny = cfg.ny;
  Grid next = grid;
  double residual = 0.0;
  for (int sweep = 0; sweep < cfg.relaxation_sweeps; ++sweep) {
    std::vector<double> row_residual(ny + 1, 0.0);
    util::parallel_for(
        1, static_cast<std::size_t>(ny),
        [&](std::size_t j) {
          double worst = 0.0;
          for (int i = 1; i < nx; ++i) {
            const double a =
                1.0 / std::pow(half_height(cfg, double(i) / nx), 2);
            const double updated =
                (a * (grid.at(j, i - 1) + grid.at(j, i + 1)) +
                 grid.at(j - 1, i) + grid.at(j + 1, i)) /
                (2.0 * (a + 1.0));
            worst = std::max(worst, std::abs(updated - grid.at(j, i)));
            next.at(static_cast<int>(j), i) = updated;
          }
          row_residual[j] = worst;
        },
        cfg.threads);
    std::swap(grid.psi, next.psi);
    residual = *std::max_element(row_residual.begin(), row_residual.end());
    if (residual < 1e-12) break;
  }
  return residual;
}

Grid initial_grid(const HifiDuctConfig& cfg) {
  Grid grid{cfg.nx, cfg.ny,
            std::vector<double>((cfg.nx + 1) * (cfg.ny + 1), 0.0)};
  // Dirichlet: psi = 0 on the centerline, 1 on the wall; linear initial
  // fill and linear inflow/outflow profiles held fixed.
  for (int j = 0; j <= cfg.ny; ++j) {
    const double frac = double(j) / cfg.ny;
    for (int i = 0; i <= cfg.nx; ++i) grid.at(j, i) = frac;
  }
  return grid;
}

}  // namespace

std::vector<double> hifi_duct_streamfunction(const HifiDuctConfig& config) {
  Grid grid = initial_grid(config);
  relax(config, grid);
  return grid.psi;
}

HifiDuctResult hifi_duct(const GasState& in, const HifiDuctConfig& config) {
  if (config.nx < 4 || config.ny < 4) {
    throw util::ModelError("hifi duct grid too small");
  }
  Grid grid = initial_grid(config);
  HifiDuctResult result;
  result.residual = relax(config, grid);
  result.sweeps = config.relaxation_sweeps;

  // Wall velocity from the normal derivative of psi at the wall, scaled
  // by the local passage height (continuity through the contour).
  const double dy = 1.0 / config.ny;
  double friction_integral = 0.0;
  double vmax = 0.0;
  for (int i = 0; i <= config.nx; ++i) {
    const double h = half_height(config, double(i) / config.nx);
    const double dpsi_dn =
        (grid.at(config.ny, i) - grid.at(config.ny - 1, i)) / dy;
    const double v_wall = dpsi_dn / h;
    vmax = std::max(vmax, v_wall);
    friction_integral += v_wall * v_wall / (config.nx + 1);
  }
  result.max_wall_velocity = vmax;

  // Skin-friction loss scales with dynamic head (W^2) and the wall
  // velocity distribution; a diffusing contour adds a separation penalty.
  const double flow_factor =
      std::pow(in.W / config.design_flow, 2);
  double dp = config.design_dp * flow_factor * friction_integral;
  if (config.contour > 0.0) {
    dp += 0.25 * config.contour * config.contour * flow_factor;
  }
  dp = std::clamp(dp, 0.0, 0.5);
  result.dp_fraction = dp;
  result.out = duct(in, dp);
  return result;
}

}  // namespace npss::tess
