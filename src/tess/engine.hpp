// Whole-engine models: the F100-class two-spool mixed-flow turbofan of
// Figure 2 and a single-spool turbojet (the simplest "partial engine" a
// user can bring up, §2.4). Both expose the same EngineModel interface:
//
//   evaluate(speeds, wf, flight)  — solve the internal flow-matching
//       problem (map operating points, turbine PRs, bypass split, nozzle
//       continuity) by Newton-Raphson at frozen spool speeds, returning
//       performance plus spool accelerations from the shaft procedures;
//   balance(...)                  — steady state: find spool speeds with
//       zero acceleration, via Newton-Raphson or an RK4 pseudo-transient
//       march (TESS's two steady-state methods, §3.2);
//   transient(...)                — integrate spool dynamics under a fuel
//       schedule with any of the four TESS transient integrators.
//
// The four adapted components compute through ComponentHooks so the same
// model runs all-local or with any subset remote over Schooner.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "solvers/newton.hpp"
#include "solvers/ode.hpp"
#include "tess/remote_seam.hpp"

namespace npss::tess {

/// Cycle outputs of one thermodynamic evaluation.
struct Performance {
  double thrust = 0.0;        ///< net thrust [N]
  double airflow = 0.0;       ///< inlet mass flow [kg/s]
  double fuel_flow = 0.0;     ///< [kg/s]
  double sfc = 0.0;           ///< thrust-specific fuel consumption [kg/(N s)]
  double t4 = 0.0;            ///< combustor exit total temperature [K]
  double opr = 0.0;           ///< overall pressure ratio
  std::vector<double> speeds;        ///< spool speeds [rpm]
  std::vector<double> states;        ///< full state vector (speeds [+ Pt])
  std::vector<double> accelerations; ///< d(state)/dt
  std::vector<double> surge_margins; ///< per compressor
  std::map<std::string, GasState> stations;
  int flow_iterations = 0;    ///< inner Newton iterations
};

enum class SteadyMethod : std::uint8_t {
  kNewtonRaphson = 0,  ///< TESS steady option 1
  kRk4March,           ///< TESS steady option 2 (pseudo-transient)
};

struct SteadyResult {
  Performance performance;
  int iterations = 0;
  double residual = 0.0;
};

struct TransientSample {
  double t = 0.0;
  Performance performance;
};

struct TransientResult {
  std::vector<TransientSample> history;
  long rhs_evaluations = 0;
};

/// Fuel schedule: fuel flow [kg/s] as a function of time [s].
using FuelSchedule = std::function<double(double)>;

class EngineModel {
 public:
  virtual ~EngineModel() = default;

  virtual std::string name() const = 0;
  virtual int num_spools() const = 0;
  virtual std::vector<double> design_speeds() const = 0;
  virtual double design_fuel_flow() const = 0;

  /// Dynamic states: the spool speeds, plus any intercomponent-volume
  /// pressures (the F100 with mixer_volume_m3 > 0 appends the plenum
  /// total pressure, which makes the system stiff — the configuration
  /// TESS's Gear option exists for).
  virtual int num_states() const { return num_spools(); }
  virtual std::vector<double> design_states() const {
    return design_speeds();
  }
  /// Per-state scale dividing d(state)/dt in the balance residual.
  virtual std::vector<double> balance_scales() const {
    return std::vector<double>(static_cast<std::size_t>(num_states()),
                               1000.0);
  }

  /// Thermodynamic evaluation at frozen states (speeds [+ pressures]).
  /// Throws util::ConvergenceError if the internal flow match fails.
  virtual Performance evaluate(const std::vector<double>& states, double wf,
                               const FlightCondition& flight) = 0;

  ComponentHooks& hooks() { return hooks_; }
  void set_hooks(ComponentHooks hooks) { hooks_ = std::move(hooks); }

  /// Solver tolerances. The inner (flow-match) and outer (balance)
  /// tolerances default to tight values for all-local computation; when
  /// the adapted components run remotely their values cross the wire as
  /// UTS single-precision floats (the paper's specs, §3.3), so the
  /// attainable residual floor rises to ~1e-6 and callers must loosen
  /// these — the same numerical reality the original faced.
  void set_solver_tolerances(double flow_tol, double balance_tol) {
    flow_tolerance_ = flow_tol;
    balance_tolerance_ = balance_tol;
  }
  double flow_tolerance() const { return flow_tolerance_; }
  double balance_tolerance() const { return balance_tolerance_; }

  /// Steady-state balance at fuel flow `wf` (§3.2's engine "balancing").
  SteadyResult balance(double wf, const FlightCondition& flight,
                       SteadyMethod method = SteadyMethod::kNewtonRaphson);

  /// Transient from `initial` speeds under `schedule`, sampled each step.
  TransientResult transient(const std::vector<double>& initial_speeds,
                            const FuelSchedule& schedule,
                            const FlightCondition& flight, double t_end,
                            double dt, solvers::IntegratorKind integrator);

  /// Reset per-run bookkeeping (the setshaft call happens again on the
  /// next balance, as in TESS where it runs once per steady computation).
  void reset_run();

 protected:
  EngineModel() : hooks_(ComponentHooks::local()) {}

  /// Shaft-correction factors (from setshaft), one per spool; filled
  /// lazily on first evaluation of a run.
  std::vector<double> ecorr_;
  ComponentHooks hooks_;
  double flow_tolerance_ = 1e-9;
  double balance_tolerance_ = 1e-7;
};

// --- Concrete engines ---------------------------------------------------------

struct TurbojetConfig {
  std::string compressor_map = "turbojet_compressor.map";
  std::string turbine_map = "turbojet_turbine.map";
  double n_design = 7500.0;       ///< rpm
  double inertia = 110.0;         ///< kg m^2
  double burner_eff = 0.985;
  double burner_dp = 0.05;
  double tailpipe_dp = 0.02;
  double nozzle_area = 0.212;     ///< m^2
  double design_wf = 0.80;        ///< kg/s
};

class TurbojetEngine final : public EngineModel {
 public:
  explicit TurbojetEngine(TurbojetConfig config = {});

  std::string name() const override { return "turbojet"; }
  int num_spools() const override { return 1; }
  std::vector<double> design_speeds() const override {
    return {config_.n_design};
  }
  double design_fuel_flow() const override { return config_.design_wf; }

  Performance evaluate(const std::vector<double>& speeds, double wf,
                       const FlightCondition& flight) override;

  const TurbojetConfig& config() const { return config_; }

 private:
  TurbojetConfig config_;
  const CompressorMap* cmap_;
  const TurbineMap* tmap_;
  std::vector<double> warm_start_;
};

struct F100Config {
  std::string fan_map = "f100_fan.map";
  std::string hpc_map = "f100_hpc.map";
  std::string hpt_map = "f100_hpt.map";
  std::string lpt_map = "f100_lpt.map";
  double n1_design = 10400.0;  ///< LP spool rpm
  double n2_design = 13450.0;  ///< HP spool rpm
  double inertia_lp = 40.0;    ///< kg m^2
  double inertia_hp = 25.0;
  double bleed_fraction = 0.05;
  double burner_eff = 0.985;
  double burner_dp = 0.05;
  double bypass_duct_dp = 0.03;
  double mixer_dp = 0.02;
  double tailpipe_dp = 0.01;
  double nozzle_area = 0.23;   ///< m^2
  double design_wf = 1.27;     ///< kg/s
  /// Start/part-power bleed valve: opens progressively below this
  /// relative HP speed, bleeding up to start_bleed_max of compressor
  /// discharge flow overboard to hold HPC surge margin at low power.
  double start_bleed_below = 0.87;
  double start_bleed_max = 0.12;
  /// Intercomponent mixing-volume size. Zero (default) models the mixer
  /// quasi-steadily; positive values add the plenum pressure as a dynamic
  /// state with dPt/dt = gamma R T (W_in - W_out) / V — a millisecond
  /// time constant that demands an implicit (Gear) integrator at
  /// engine-transient step sizes.
  double mixer_volume_m3 = 0.0;
};

class F100Engine final : public EngineModel {
 public:
  explicit F100Engine(F100Config config = {});

  std::string name() const override { return "f100"; }
  int num_spools() const override { return 2; }
  std::vector<double> design_speeds() const override {
    return {config_.n1_design, config_.n2_design};
  }
  double design_fuel_flow() const override { return config_.design_wf; }

  bool volume_dynamics() const { return config_.mixer_volume_m3 > 0.0; }
  int num_states() const override { return volume_dynamics() ? 3 : 2; }
  std::vector<double> design_states() const override;
  std::vector<double> balance_scales() const override;

  Performance evaluate(const std::vector<double>& states, double wf,
                       const FlightCondition& flight) override;

  const F100Config& config() const { return config_; }

 private:
  F100Config config_;
  const CompressorMap* fan_map_;
  const CompressorMap* hpc_map_;
  const TurbineMap* hpt_map_;
  const TurbineMap* lpt_map_;
  std::vector<double> warm_start_;
  std::vector<double> warm_start_vol_;
};

}  // namespace npss::tess
