// The remote-computation seam.
//
// TESS's four adapted modules — shaft, duct, combustor, nozzle — execute
// their numeric cores either locally or through Schooner (§3.3). The engine
// model calls those cores only through ComponentHooks, whose argument
// shapes are flat arrays and scalars matching the paper's UTS export
// specifications, so binding them to RPC stubs is mechanical (the npss
// layer does exactly that). Everything else (compressor, turbine, mixer,
// inlet) always computes locally, as it did in the prototype.
#pragma once

#include <array>
#include <functional>

#include "tess/components.hpp"

namespace npss::tess {

/// Station state as it crosses the procedure boundary: [W, Tt, Pt, FAR].
using StationArray = std::array<double, 4>;

inline StationArray to_array(const GasState& s) {
  return {s.W, s.Tt, s.Pt, s.far};
}
inline GasState from_array(const StationArray& a) {
  return GasState{a[0], a[1], a[2], a[3]};
}

// An engine model may contain several instances of the same adapted
// component — the F100 network has two ducts and two shafts (Figure 2) —
// and in the paper each instance owns its own remote process (which is why
// Schooner needed lines, §4.2). The leading `instance` argument routes the
// call to the right one; it is NOT part of the wire signature, exactly as
// in AVS where the routing was implicit in which module made the call.
struct ComponentHooks {
  /// duct(instance, in[4], dp_fraction) -> out[4]
  std::function<StationArray(int, const StationArray&, double)> duct;

  /// combustor(instance, in[4], wfuel, eff, dp_fraction) -> out[4]
  std::function<StationArray(int, const StationArray&, double, double, double)>
      combustor;

  /// nozzle(instance, in[4], area, p_ambient)
  ///     -> [w_required, thrust, v_exit, choked]
  std::function<StationArray(int, const StationArray&, double, double)> nozzle;

  /// setshaft(spool, ecom[4], incom, etur[4], intur) -> ecorr   (§3.3)
  std::function<double(int, const StationArray&, int, const StationArray&,
                       int)>
      setshaft;

  /// shaft(spool, ecom[4], incom, etur[4], intur, ecorr, xspool, xmyi)
  ///     -> dxspl
  std::function<double(int, const StationArray&, int, const StationArray&,
                       int, double, double, double)>
      shaft;

  /// All-local hooks (the unadapted TESS).
  static ComponentHooks local();
};

}  // namespace npss::tess
