#include "tess/mission.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace npss::tess {

double FuelGovernor::update(double n2_target, double n2_actual, double dt,
                            double p3_pa) {
  const double error = n2_target - n2_actual;
  // PI with freeze-on-limit anti-windup: the integrator only advances
  // while neither the rate limiter nor the saturator is clipping, the
  // role a real fuel control's acceleration schedule plays.
  const double tentative = integral_ + error * dt;
  const double command = config_.kp * error + config_.ki * tentative;
  const double desired_step = command - wf_;
  const double limited_step = std::clamp(
      desired_step, -config_.rate_limit * dt, config_.rate_limit * dt);
  const double accel_ceiling =
      std::max(config_.wf_min, config_.accel_wf_per_p3 * p3_pa / 1e6);
  const double wf_new =
      std::clamp(wf_ + limited_step, config_.wf_min,
                 std::min(config_.wf_max, accel_ceiling));
  if (limited_step == desired_step && wf_new == wf_ + limited_step) {
    integral_ = tentative;
  }
  wf_ = wf_new;
  return wf_;
}

MissionResult fly_mission(EngineModel& engine,
                          const std::vector<MissionLeg>& legs,
                          std::vector<double> initial_states,
                          double initial_wf, const GovernorConfig& governor,
                          double dt, solvers::IntegratorKind kind) {
  if (legs.empty()) {
    throw util::ModelError("fly_mission: no legs");
  }
  MissionResult result;
  FuelGovernor fuel(governor, initial_wf);
  auto integrator = solvers::make_integrator(kind);
  std::vector<double> states = std::move(initial_states);
  double t = 0.0;

  for (std::size_t leg_index = 0; leg_index < legs.size(); ++leg_index) {
    const MissionLeg& leg = legs[leg_index];
    // Flight conditions step at leg boundaries: drop integrator history.
    integrator->reset();
    const double leg_end = t + leg.duration_s;
    while (t < leg_end - 1e-9) {
      const double step = std::min(dt, leg_end - t);
      Performance now = engine.evaluate(states, fuel.fuel_flow(), leg.flight);
      const double wf = fuel.update(leg.n2_target, now.speeds[1], step,
                                    now.stations.at("st3").Pt);
      result.history.push_back(MissionSample{t, leg_index, wf, now});
      result.fuel_burned_kg += wf * step;
      result.min_surge_margin = std::min(
          {result.min_surge_margin, now.surge_margins[0],
           now.surge_margins[1]});
      // Zero-order hold on the governor output across the step.
      solvers::OdeFn rhs = [&](double, const std::vector<double>& y) {
        return engine.evaluate(y, wf, leg.flight).accelerations;
      };
      states = integrator->step(rhs, t, states, step);
      t += step;
    }
  }
  Performance final_perf =
      engine.evaluate(states, fuel.fuel_flow(), legs.back().flight);
  result.history.push_back(
      MissionSample{t, legs.size() - 1, fuel.fuel_flow(), final_perf});
  return result;
}

}  // namespace npss::tess
