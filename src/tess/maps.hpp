// Component performance maps. In TESS the compressor and turbine modules
// load performance maps through an AVS browser widget (§3.2); here maps are
// analytic, scalable representations registered in a named catalog so the
// browser widget path ("f100_fan.map", ...) selects among them.
//
// Compressor map: speed lines parameterized by an R-line coordinate
// r in [1 (choke) .. 2 (surge)], the classic NASA representation:
//   Wc(Ncrel, r)  = Wc_d * Ncrel^b * (1.12 - 0.12 r)
//   PR(Ncrel, r)  = 1 + (PR_d - 1) * Ncrel^a * (0.70 + 0.20 r)
//   eff(Ncrel, r) = eff_d * (1 - c1 (Ncrel-1)^2) * (1 - c2 (r - 1.5)^2)
//
// Turbine map: a choking flow parameter vs pressure ratio plus an
// efficiency dome in (speed, PR).
#pragma once

#include <string>
#include <vector>

#include "util/status.hpp"

namespace npss::tess {

struct CompressorPoint {
  double wc = 0.0;   ///< corrected flow [kg/s]
  double pr = 1.0;   ///< total pressure ratio
  double eff = 1.0;  ///< adiabatic efficiency
  double r = 1.5;    ///< R-line coordinate actually used
};

class CompressorMap {
 public:
  CompressorMap() = default;
  CompressorMap(std::string name, double wc_design, double pr_design,
                double eff_design)
      : name_(std::move(name)),
        wc_d_(wc_design),
        pr_d_(pr_design),
        eff_d_(eff_design) {}

  const std::string& name() const { return name_; }
  double design_corrected_flow() const { return wc_d_; }
  double design_pr() const { return pr_d_; }

  /// Evaluate at relative corrected speed and R-line.
  CompressorPoint at(double nc_rel, double r_line) const;

  /// Invert the speed line: find the R-line carrying corrected flow `wc`
  /// at relative speed `nc_rel`. Values beyond choke/surge clamp to the
  /// line ends (the solver residuals then push the operating point back).
  CompressorPoint at_flow(double nc_rel, double wc) const;

  /// Invert the speed line by pressure ratio: find the R-line delivering
  /// `pr` at relative speed `nc_rel` (clamped to the line ends). Used by
  /// the intercomponent-volume formulation, where a plenum pressure
  /// dictates the compressor's back-pressure.
  CompressorPoint at_pr(double nc_rel, double pr) const;

  /// Corrected-flow range of a speed line [choke end, surge end].
  std::pair<double, double> flow_range(double nc_rel) const;

  /// Surge margin at a point, (Wc_surgeline_PR / PR - 1) style.
  double surge_margin(const CompressorPoint& pt, double nc_rel) const;

 private:
  std::string name_ = "generic";
  double wc_d_ = 100.0;
  double pr_d_ = 10.0;
  double eff_d_ = 0.85;
};

struct TurbinePoint {
  double flow_parameter = 0.0;  ///< W sqrt(Tt)/Pt [kg sqrt(K)/(s kPa)]
  double eff = 1.0;
};

class TurbineMap {
 public:
  TurbineMap() = default;
  TurbineMap(std::string name, double fp_design, double pr_design,
             double eff_design)
      : name_(std::move(name)),
        fp_d_(fp_design),
        pr_d_(pr_design),
        eff_d_(eff_design) {}

  const std::string& name() const { return name_; }
  double design_flow_parameter() const { return fp_d_; }
  double design_pr() const { return pr_d_; }

  /// Evaluate at relative corrected speed and expansion ratio (>1).
  TurbinePoint at(double nc_rel, double pr) const;

 private:
  std::string name_ = "generic";
  double fp_d_ = 1.0;
  double pr_d_ = 3.0;
  double eff_d_ = 0.88;
};

/// Named map catalog (what the browser widget's file names resolve to).
const CompressorMap& compressor_map(const std::string& file_name);
const TurbineMap& turbine_map(const std::string& file_name);
std::vector<std::string> compressor_map_names();
std::vector<std::string> turbine_map_names();

}  // namespace npss::tess
