#include "tess/maps.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace npss::tess {

namespace {
constexpr double kFlowExp = 0.85;    // Wc ~ Ncrel^b
constexpr double kPrExp = 1.80;      // PR-1 ~ Ncrel^a
constexpr double kEffSpeedLoss = 0.35;
constexpr double kEffRlineLoss = 0.12;
constexpr double kWcSlope = 0.12;    // flow drop choke -> surge
constexpr double kPrSlope = 0.20;    // PR rise choke -> surge
}  // namespace

CompressorPoint CompressorMap::at(double nc_rel, double r_line) const {
  nc_rel = std::clamp(nc_rel, 0.2, 1.3);
  const double r = std::clamp(r_line, 0.8, 2.2);
  CompressorPoint pt;
  pt.r = r;
  pt.wc = wc_d_ * std::pow(nc_rel, kFlowExp) * (1.12 - kWcSlope * r);
  pt.pr = 1.0 + (pr_d_ - 1.0) * std::pow(nc_rel, kPrExp) *
                    (0.70 + kPrSlope * r);
  const double speed_term = 1.0 - kEffSpeedLoss * (nc_rel - 1.0) * (nc_rel - 1.0);
  const double r_term = 1.0 - kEffRlineLoss * (r - 1.5) * (r - 1.5);
  pt.eff = std::clamp(eff_d_ * speed_term * r_term, 0.30, 0.92);
  return pt;
}

CompressorPoint CompressorMap::at_flow(double nc_rel, double wc) const {
  nc_rel = std::clamp(nc_rel, 0.2, 1.3);
  // Wc = wc_d * nc^b * (1.12 - s r)  =>  r = (1.12 - Wc/(wc_d nc^b)) / s
  const double base = wc_d_ * std::pow(nc_rel, kFlowExp);
  double r = (1.12 - wc / base) / kWcSlope;
  return at(nc_rel, r);
}

CompressorPoint CompressorMap::at_pr(double nc_rel, double pr) const {
  nc_rel = std::clamp(nc_rel, 0.2, 1.3);
  // PR = 1 + (PR_d - 1) nc^a (0.70 + s r)  =>  r from PR.
  const double base = (pr_d_ - 1.0) * std::pow(nc_rel, kPrExp);
  double r = ((pr - 1.0) / base - 0.70) / kPrSlope;
  return at(nc_rel, r);
}

std::pair<double, double> CompressorMap::flow_range(double nc_rel) const {
  return {at(nc_rel, 2.2).wc, at(nc_rel, 0.8).wc};
}

double CompressorMap::surge_margin(const CompressorPoint& pt,
                                   double nc_rel) const {
  const CompressorPoint surge = at(nc_rel, 2.2);
  return surge.pr / pt.pr - 1.0;
}

TurbinePoint TurbineMap::at(double nc_rel, double pr) const {
  nc_rel = std::clamp(nc_rel, 0.2, 1.3);
  pr = std::max(pr, 1.0 + 1e-9);
  TurbinePoint pt;
  // Choking flow parameter: rises with PR, saturating at the design value
  // once the nozzle guide vanes choke.
  const double shape = [](double x) {
    return std::sqrt(std::max(0.0, 1.0 - std::pow(x, -1.8)));
  }(pr);
  const double shape_d = std::sqrt(1.0 - std::pow(pr_d_, -1.8));
  pt.flow_parameter = fp_d_ * shape / shape_d;
  const double speed_term =
      1.0 - 0.20 * (nc_rel - 1.0) * (nc_rel - 1.0);
  const double pr_term = 1.0 - 0.08 * std::pow(pr / pr_d_ - 1.0, 2);
  pt.eff = std::clamp(eff_d_ * speed_term * pr_term, 0.30, 0.93);
  return pt;
}

namespace {

const std::map<std::string, CompressorMap>& compressor_catalog() {
  static const std::map<std::string, CompressorMap> maps = {
      // F100-class components (approximate cycle: 100 kg/s class, OPR ~24).
      {"f100_fan.map", {"f100_fan.map", 102.0, 3.06, 0.86}},
      {"f100_hpc.map", {"f100_hpc.map", 24.5, 8.0, 0.85}},
      // Single-spool turbojet (J79-ish).
      {"turbojet_compressor.map", {"turbojet_compressor.map", 77.0, 13.5, 0.84}},
      // A small auxiliary compressor for tests.
      {"test_small.map", {"test_small.map", 10.0, 4.0, 0.82}},
  };
  return maps;
}

const std::map<std::string, TurbineMap>& turbine_catalog() {
  static const std::map<std::string, TurbineMap> maps = {
      {"f100_hpt.map", {"f100_hpt.map", 1.03, 3.1, 0.89}},
      {"f100_lpt.map", {"f100_lpt.map", 2.89, 2.3, 0.90}},
      {"turbojet_turbine.map", {"turbojet_turbine.map", 2.13, 4.4, 0.88}},
      {"test_small_turbine.map", {"test_small_turbine.map", 2.2, 2.5, 0.87}},
  };
  return maps;
}

}  // namespace

const CompressorMap& compressor_map(const std::string& file_name) {
  auto it = compressor_catalog().find(file_name);
  if (it == compressor_catalog().end()) {
    throw util::ModelError("no compressor map '" + file_name + "'");
  }
  return it->second;
}

const TurbineMap& turbine_map(const std::string& file_name) {
  auto it = turbine_catalog().find(file_name);
  if (it == turbine_catalog().end()) {
    throw util::ModelError("no turbine map '" + file_name + "'");
  }
  return it->second;
}

std::vector<std::string> compressor_map_names() {
  std::vector<std::string> names;
  for (const auto& [name, map] : compressor_catalog()) names.push_back(name);
  return names;
}

std::vector<std::string> turbine_map_names() {
  std::vector<std::string> names;
  for (const auto& [name, map] : turbine_catalog()) names.push_back(name);
  return names;
}

}  // namespace npss::tess
