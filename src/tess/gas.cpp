#include "tess/gas.hpp"

#include <cmath>

#include "util/status.hpp"

namespace npss::tess {

namespace {
// cp(T) = kCpBase + kCpSlope * (T - kTref), scaled up with fuel-air ratio.
constexpr double kCpBase = 1004.7;
constexpr double kCpSlope = 0.118;
constexpr double kFarGain = 2.5;

double far_factor(double far) { return 1.0 + kFarGain * far; }
}  // namespace

double cp(double Tt, double far) {
  return (kCpBase + kCpSlope * (Tt - kTref)) * far_factor(far);
}

double gamma(double Tt, double far) {
  const double c = cp(Tt, far);
  return c / (c - kGasConstant);
}

double enthalpy(double Tt, double far) {
  const double dT = Tt - kTref;
  return (kCpBase * dT + 0.5 * kCpSlope * dT * dT) * far_factor(far);
}

double temperature_from_enthalpy(double h, double far) {
  // Solve the quadratic in dT directly: 0.5 s dT^2 + c dT - h/f = 0.
  const double target = h / far_factor(far);
  const double disc = kCpBase * kCpBase + 2.0 * kCpSlope * target;
  if (disc < 0.0) {
    throw util::ModelError("enthalpy below representable range");
  }
  return kTref + (-kCpBase + std::sqrt(disc)) / kCpSlope;
}

double GasState::corrected_flow() const {
  return W * std::sqrt(theta()) / delta();
}

double isa_temperature(double altitude_m) {
  if (altitude_m <= 11000.0) return kTref - 0.0065 * altitude_m;
  return 216.65;
}

double isa_pressure(double altitude_m) {
  if (altitude_m <= 11000.0) {
    return kPref * std::pow(1.0 - 0.0065 * altitude_m / kTref, 5.2561);
  }
  const double p11 = kPref * std::pow(1.0 - 0.0065 * 11000.0 / kTref, 5.2561);
  return p11 * std::exp(-9.80665 * (altitude_m - 11000.0) /
                        (kGasConstant * 216.65));
}

double FlightCondition::ambient_pressure() const {
  return isa_pressure(altitude_m);
}

double FlightCondition::ambient_temperature() const {
  return isa_temperature(altitude_m) + dT_isa;
}

double FlightCondition::total_temperature() const {
  const double T = ambient_temperature();
  const double g = gamma(T);
  return T * (1.0 + 0.5 * (g - 1.0) * mach * mach);
}

double FlightCondition::total_pressure() const {
  const double T = ambient_temperature();
  const double g = gamma(T);
  return ambient_pressure() *
         std::pow(1.0 + 0.5 * (g - 1.0) * mach * mach, g / (g - 1.0));
}

}  // namespace npss::tess
