#include "tess/remote_seam.hpp"

namespace npss::tess {

ComponentHooks ComponentHooks::local() {
  ComponentHooks hooks;
  hooks.duct = [](int, const StationArray& in, double dp) {
    return to_array(tess::duct(from_array(in), dp));
  };
  hooks.combustor = [](int, const StationArray& in, double wf, double eff,
                       double dp) {
    return to_array(tess::combustor(from_array(in), wf, eff, dp).out);
  };
  hooks.nozzle = [](int, const StationArray& in, double area, double pamb) {
    NozzleResult r = tess::nozzle(from_array(in), area, pamb);
    return StationArray{r.w_required, r.thrust, r.exit_velocity,
                        r.choked ? 1.0 : 0.0};
  };
  hooks.setshaft = [](int, const StationArray& ecom, int incom,
                      const StationArray& etur, int intur) {
    return tess::setshaft(ecom.data(), incom, etur.data(), intur);
  };
  hooks.shaft = [](int, const StationArray& ecom, int incom,
                   const StationArray& etur, int intur, double ecorr,
                   double xspool, double xmyi) {
    return tess::shaft(ecom.data(), incom, etur.data(), intur, ecorr, xspool,
                       xmyi);
  };
  return hooks;
}

}  // namespace npss::tess
