#include "tess/engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace npss::tess {

namespace {

double clampd(double v, double lo, double hi) {
  return std::clamp(v, lo, hi);
}

void record_iterations(const char* name, double iterations) {
  if (!obs::enabled()) return;
  obs::Registry::global()
      .histogram(std::string("tess.engine.") + name,
                 obs::default_iteration_bounds())
      .record(iterations);
}

}  // namespace

// --- Shared drivers -----------------------------------------------------------

SteadyResult EngineModel::balance(double wf, const FlightCondition& flight,
                                  SteadyMethod method) {
  reset_run();  // setshaft runs once per steady computation, as in TESS
  const std::vector<double> design = design_states();
  const std::vector<double> scales = balance_scales();
  const int n = num_states();

  if (method == SteadyMethod::kNewtonRaphson) {
    solvers::NewtonOptions opt;
    opt.tolerance = balance_tolerance_;
    opt.max_iterations = 60;
    opt.fd_step = 1e-5;
    Performance last;
    auto residual = [&](const std::vector<double>& x) {
      std::vector<double> states(n);
      for (int i = 0; i < n; ++i) states[i] = x[i] * design[i];
      last = evaluate(states, wf, flight);
      std::vector<double> r(n);
      for (int i = 0; i < n; ++i) {
        r[i] = last.accelerations[i] / scales[i];
      }
      return r;
    };
    std::vector<double> x0(n, 1.0);
    solvers::NewtonResult nr;
    try {
      nr = solvers::newton_solve(residual, x0, opt);
    } catch (const util::ConvergenceError&) {
      // Far-from-design operating points (deep part power) can defeat
      // Newton from the design guess; pre-condition with a short
      // pseudo-transient march and retry from wherever it settles.
      auto integ = solvers::make_integrator(
          num_states() > num_spools() ? solvers::IntegratorKind::kGear
                                      : solvers::IntegratorKind::kRungeKutta4);
      // The design point itself may be thermodynamically infeasible at
      // this fuel flow (deep idle at full speed has no flow match); scan
      // down in speed until evaluation succeeds, then march from there.
      std::vector<double> march_states = design;
      bool feasible = false;
      for (double scale : {1.0, 0.92, 0.85, 0.78, 0.72, 0.66, 0.60}) {
        for (int i = 0; i < n; ++i) march_states[i] = design[i] * scale;
        try {
          (void)evaluate(march_states, wf, flight);
          feasible = true;
          break;
        } catch (const util::ConvergenceError&) {
        }
      }
      if (!feasible) throw;
      solvers::OdeFn rhs = [&](double, const std::vector<double>& y) {
        return evaluate(y, wf, flight).accelerations;
      };
      for (int s = 0; s < 800; ++s) {
        march_states = integ->step(rhs, s * 0.05, march_states, 0.05);
        Performance p = evaluate(march_states, wf, flight);
        double worst = 0.0;
        for (int i = 0; i < n; ++i) {
          worst = std::max(worst,
                           std::abs(p.accelerations[i]) * 1000.0 / scales[i]);
        }
        if (worst < 50.0) break;
      }
      for (int i = 0; i < n; ++i) x0[i] = march_states[i] / design[i];
      nr = solvers::newton_solve(residual, x0, opt);
    }
    SteadyResult result;
    std::vector<double> states(n);
    for (int i = 0; i < n; ++i) states[i] = nr.solution[i] * design[i];
    result.performance = evaluate(states, wf, flight);
    result.iterations = nr.iterations;
    result.residual = nr.residual_norm;
    record_iterations("balance_iterations", result.iterations);
    return result;
  }

  // Pseudo-transient march to equilibrium; the volume state (if any) is
  // stiff, so the march uses Gear while the pure-spool model keeps RK4.
  auto integrator = solvers::make_integrator(
      num_states() > num_spools() ? solvers::IntegratorKind::kGear
                                  : solvers::IntegratorKind::kRungeKutta4);
  std::vector<double> states = design;
  const double dt = 0.05;
  int steps = 0;
  Performance perf = evaluate(states, wf, flight);
  solvers::OdeFn rhs = [&](double, const std::vector<double>& y) {
    Performance p = evaluate(y, wf, flight);
    return p.accelerations;
  };
  while (steps < 20000) {
    perf = evaluate(states, wf, flight);
    double worst = 0.0;
    for (int i = 0; i < n; ++i) {
      // Settle to 0.5 rpm/s equivalent on every state.
      worst = std::max(worst,
                       std::abs(perf.accelerations[i]) * 1000.0 / scales[i]);
    }
    if (worst < 0.5) {
      SteadyResult result;
      result.performance = perf;
      result.iterations = steps;
      result.residual = worst;
      record_iterations("balance_iterations", result.iterations);
      return result;
    }
    states = integrator->step(rhs, steps * dt, states, dt);
    ++steps;
  }
  throw util::ConvergenceError("steady march did not settle in " +
                               std::to_string(steps) + " steps");
}

TransientResult EngineModel::transient(const std::vector<double>& initial_speeds,
                                       const FuelSchedule& schedule,
                                       const FlightCondition& flight,
                                       double t_end, double dt,
                                       solvers::IntegratorKind kind) {
  auto integrator = solvers::make_integrator(kind);
  TransientResult result;
  solvers::OdeFn rhs = [&](double t, const std::vector<double>& y) {
    Performance p = evaluate(y, schedule(t), flight);
    return p.accelerations;
  };
  Performance p0 = evaluate(initial_speeds, schedule(0.0), flight);
  result.history.push_back(TransientSample{0.0, p0});
  auto observer = [&](double t, const std::vector<double>& y) {
    Performance p = evaluate(y, schedule(t), flight);
    record_iterations("step_flow_iterations", p.flow_iterations);
    if (obs::enabled()) {
      obs::Registry::global().counter("tess.engine.transient_steps").add();
    }
    result.history.push_back(TransientSample{t, std::move(p)});
  };
  solvers::integrate(*integrator, rhs, 0.0, t_end, dt, initial_speeds,
                     observer);
  result.rhs_evaluations = integrator->evaluations();
  if (obs::enabled()) {
    obs::Registry::global()
        .counter("tess.engine.rhs_evaluations")
        .add(static_cast<std::uint64_t>(result.rhs_evaluations));
  }
  return result;
}

void EngineModel::reset_run() { ecorr_.clear(); }

// --- Turbojet -------------------------------------------------------------------

TurbojetEngine::TurbojetEngine(TurbojetConfig config)
    : config_(std::move(config)),
      cmap_(&compressor_map(config_.compressor_map)),
      tmap_(&turbine_map(config_.turbine_map)) {}

Performance TurbojetEngine::evaluate(const std::vector<double>& speeds,
                                     double wf,
                                     const FlightCondition& flight) {
  if (speeds.size() != 1) {
    throw util::ModelError("turbojet expects one spool speed");
  }
  const double n = speeds[0];
  const double w_design = cmap_->design_corrected_flow();

  CompressorResult comp;
  TurbineResult turb;
  GasState st7;
  StationArray noz{};
  GasState st2, st4;

  auto flow_residual = [&](const std::vector<double>& u) {
    const double w2 = clampd(u[0], 0.05, 3.0) * w_design;
    const double pr_t = clampd(u[1], 0.3, 2.5) * tmap_->design_pr();
    st2 = inlet(flight, w2).out;
    comp = compressor(st2, *cmap_, n, config_.n_design);
    StationArray burn = hooks_.combustor(0, to_array(comp.out), wf,
                                         config_.burner_eff,
                                         config_.burner_dp);
    st4 = from_array(burn);
    turb = turbine(st4, *tmap_, pr_t, n, config_.n_design);
    StationArray tail =
        hooks_.duct(0, to_array(turb.out), config_.tailpipe_dp);
    st7 = from_array(tail);
    noz = hooks_.nozzle(0, tail, config_.nozzle_area,
                        flight.ambient_pressure());
    return std::vector<double>{
        (st4.W - turb.flow_demand) / w_design,
        (st7.W - noz[0]) / w_design,
    };
  };

  if (warm_start_.empty()) warm_start_ = {1.0, 1.0};
  solvers::NewtonOptions opt;
  opt.tolerance = flow_tolerance_;
  opt.max_iterations = 80;
  solvers::NewtonResult nr =
      solvers::newton_solve(flow_residual, warm_start_, opt);
  warm_start_ = nr.solution;
  flow_residual(nr.solution);  // leave component state at the solution

  Performance perf;
  perf.airflow = st2.W;
  perf.fuel_flow = wf;
  perf.t4 = st4.Tt;
  perf.opr = comp.out.Pt / st2.Pt;
  perf.speeds = speeds;
  perf.states = speeds;
  perf.surge_margins = {comp.surge_margin};
  perf.flow_iterations = nr.iterations;
  perf.stations = {{"st2", st2},      {"st3", comp.out},
                   {"st4", st4},      {"st5", turb.out},
                   {"st7", st7}};

  const double ram = inlet(flight, st2.W).ram_drag;
  perf.thrust = noz[1] - ram;
  perf.sfc = wf / std::max(perf.thrust, 1.0);

  const double dh_c = enthalpy(comp.out.Tt) - enthalpy(st2.Tt);
  const double dh_t =
      enthalpy(st4.Tt, st4.far) - enthalpy(turb.out.Tt, st4.far);
  StationArray ecom{comp.power, st2.W, dh_c, comp.point.eff};
  StationArray etur{turb.power, st4.W, dh_t, turb.point.eff};
  if (ecorr_.empty()) {
    ecorr_ = {hooks_.setshaft(0, ecom, 1, etur, 1)};
  }
  perf.accelerations = {hooks_.shaft(0, ecom, 1, etur, 1, ecorr_[0], n,
                                     config_.inertia)};
  return perf;
}

// --- F100 two-spool mixed turbofan -------------------------------------------------

F100Engine::F100Engine(F100Config config)
    : config_(std::move(config)),
      fan_map_(&compressor_map(config_.fan_map)),
      hpc_map_(&compressor_map(config_.hpc_map)),
      hpt_map_(&turbine_map(config_.hpt_map)),
      lpt_map_(&turbine_map(config_.lpt_map)) {}

std::vector<double> F100Engine::design_states() const {
  if (!volume_dynamics()) return design_speeds();
  // Third state: mixer plenum total pressure near its design value.
  return {config_.n1_design, config_.n2_design, 3.1e5};
}

std::vector<double> F100Engine::balance_scales() const {
  if (!volume_dynamics()) return {1000.0, 1000.0};
  // The plenum pressure derivative is in Pa/s with a ~ms time constant.
  return {1000.0, 1000.0, 1e9};
}

Performance F100Engine::evaluate(const std::vector<double>& states, double wf,
                                 const FlightCondition& flight) {
  const bool vol = volume_dynamics();
  if (static_cast<int>(states.size()) != num_states()) {
    throw util::ModelError("f100 expects " + std::to_string(num_states()) +
                           " states, got " + std::to_string(states.size()));
  }
  const double n1 = states[0], n2 = states[1];
  // Clamp the plenum pressure into its physical envelope so integrator
  // predictors probing far-out states cannot push the flow match off the
  // maps entirely.
  const double pt6_state = vol ? clampd(states[2], 0.4e5, 1.0e6) : 0.0;
  const double w_design = fan_map_->design_corrected_flow();

  GasState st2, st13, st25, st3, st4, st45, st5, st16, st16d, st6, st7;
  CompressorResult fan, hpc;
  TurbineResult hpt, lpt;
  MixerResult mixer;
  StationArray noz{};

  // March the gas path for one candidate operating point. In volume mode
  // pr_lpt < 0 means "derive the LPT expansion from the plenum pressure".
  auto march = [&](double w2, double bpr, double pr_hpt, double pr_lpt) {
    st2 = inlet(flight, w2).out;
    fan = compressor(st2, *fan_map_, n1, config_.n1_design);
    st13 = fan.out;

    // Splitter: core and bypass share the fan exit total state.
    st25 = st13;
    st25.W = st13.W / (1.0 + bpr);
    st16 = st13;
    st16.W = st13.W - st25.W;

    BleedResult bl = bleed(st25, config_.bleed_fraction);
    hpc = compressor(bl.out, *hpc_map_, n2, config_.n2_design);
    st3 = hpc.out;

    // Start/part-power bleed: below the threshold HP speed a
    // compressor-exit bleed valve opens progressively, pulling extra flow
    // through the HPC so its operating point stays off the surge line —
    // the operability fix real engines use at low power.
    const double n2_rel = n2 / config_.n2_design;
    GasState st3b = st3;
    if (n2_rel < config_.start_bleed_below) {
      const double open =
          std::min(1.0, (config_.start_bleed_below - n2_rel) /
                            std::max(config_.start_bleed_below - 0.60, 1e-6));
      st3b = bleed(st3, config_.start_bleed_max * open).out;
    }

    StationArray burn = hooks_.combustor(0, to_array(st3b), wf,
                                         config_.burner_eff,
                                         config_.burner_dp);
    st4 = from_array(burn);

    hpt = turbine(st4, *hpt_map_, pr_hpt, n2, config_.n2_design);
    st45 = hpt.out;
    if (pr_lpt < 0.0) {
      // Intercomponent-volume mode: the LPT exhausts into the plenum.
      pr_lpt = std::max(st45.Pt * (1.0 - config_.mixer_dp) / pt6_state,
                        1.0 + 1e-6);
    }
    lpt = turbine(st45, *lpt_map_, pr_lpt, n1, config_.n1_design);
    st5 = lpt.out;

    StationArray bdx =
        hooks_.duct(0, to_array(st16), config_.bypass_duct_dp);
    st16d = from_array(bdx);

    mixer = mix(st5, st16d, config_.mixer_dp);
    st6 = mixer.out;
    if (vol) st6.Pt = pt6_state;
    StationArray tail =
        hooks_.duct(1, to_array(st6), config_.tailpipe_dp);
    st7 = from_array(tail);
    noz = hooks_.nozzle(0, tail, config_.nozzle_area,
                        flight.ambient_pressure());
  };

  solvers::NewtonResult nr;
  if (vol) {
    // The plenum pressure dictates the fan back-pressure, so the fan
    // operating point — and with it the inlet flow — follows directly
    // from the map (no unknown): the classic intercomponent-volume
    // formulation, which keeps the fast pressure physics out of the
    // Newton iteration entirely.
    const GasState free_stream = inlet(flight, 1.0).out;
    const double nc_rel =
        (n1 / std::sqrt(free_stream.theta())) / config_.n1_design;
    const double pr_fan_needed =
        pt6_state / ((1.0 - config_.bypass_duct_dp) *
                     (1.0 - config_.mixer_dp)) /
        free_stream.Pt;
    CompressorPoint fan_pt = fan_map_->at_pr(nc_rel, pr_fan_needed);
    const double w2 =
        fan_pt.wc * free_stream.delta() / std::sqrt(free_stream.theta());

    auto residual = [&](const std::vector<double>& u) {
      const double bpr = clampd(u[0], 0.02, 8.0) * 0.7;
      const double pr_hpt = clampd(u[1], 0.3, 2.5) * hpt_map_->design_pr();
      march(w2, bpr, pr_hpt, -1.0);
      return std::vector<double>{
          (st4.W - hpt.flow_demand) / w_design,
          (st45.W - lpt.flow_demand) / w_design,
      };
    };
    if (warm_start_vol_.empty()) warm_start_vol_ = {1.0, 1.0};
    solvers::NewtonOptions opt;
    opt.tolerance = flow_tolerance_;
    opt.max_iterations = 100;
    nr = solvers::newton_solve(residual, warm_start_vol_, opt);
    warm_start_vol_ = nr.solution;
    residual(nr.solution);
  } else {
    auto residual = [&](const std::vector<double>& u) {
      march(clampd(u[0], 0.05, 3.0) * w_design,
            clampd(u[1], 0.02, 8.0) * 0.7,
            clampd(u[2], 0.3, 2.5) * hpt_map_->design_pr(),
            clampd(u[3], 0.3, 2.5) * lpt_map_->design_pr());
      return std::vector<double>{
          (st4.W - hpt.flow_demand) / w_design,
          (st45.W - lpt.flow_demand) / w_design,
          mixer.pressure_imbalance,
          (st7.W - noz[0]) / w_design,
      };
    };
    if (warm_start_.empty()) warm_start_ = {1.0, 1.0, 1.0, 1.0};
    solvers::NewtonOptions opt;
    opt.tolerance = flow_tolerance_;
    opt.max_iterations = 100;
    nr = solvers::newton_solve(residual, warm_start_, opt);
    warm_start_ = nr.solution;
    residual(nr.solution);
  }

  Performance perf;
  perf.airflow = st2.W;
  perf.fuel_flow = wf;
  perf.t4 = st4.Tt;
  perf.opr = st3.Pt / st2.Pt;
  perf.speeds = {n1, n2};
  perf.states = states;
  perf.surge_margins = {fan.surge_margin, hpc.surge_margin};
  perf.flow_iterations = nr.iterations;
  perf.stations = {{"st2", st2},   {"st13", st13}, {"st25", st25},
                   {"st3", st3},   {"st4", st4},   {"st45", st45},
                   {"st5", st5},   {"st16", st16}, {"st6", st6},
                   {"st7", st7}};

  const double ram = inlet(flight, st2.W).ram_drag;
  perf.thrust = noz[1] - ram;
  perf.sfc = wf / std::max(perf.thrust, 1.0);

  // LP shaft: fan absorbed vs LPT delivered; HP shaft: HPC vs HPT (the
  // paper's two shaft-module instances, "low speed shaft" in Figure 2).
  const double dh_fan = enthalpy(st13.Tt) - enthalpy(st2.Tt);
  const double dh_hpc = enthalpy(st3.Tt) - enthalpy(st25.Tt);
  const double dh_hpt =
      enthalpy(st4.Tt, st4.far) - enthalpy(st45.Tt, st4.far);
  const double dh_lpt =
      enthalpy(st45.Tt, st45.far) - enthalpy(st5.Tt, st45.far);
  StationArray ecom_lp{fan.power, st2.W, dh_fan, fan.point.eff};
  StationArray etur_lp{lpt.power, st45.W, dh_lpt, lpt.point.eff};
  StationArray ecom_hp{hpc.power, st25.W, dh_hpc, hpc.point.eff};
  StationArray etur_hp{hpt.power, st4.W, dh_hpt, hpt.point.eff};
  if (ecorr_.empty()) {
    ecorr_ = {hooks_.setshaft(0, ecom_lp, 1, etur_lp, 1),
              hooks_.setshaft(1, ecom_hp, 1, etur_hp, 1)};
  }
  perf.accelerations = {
      hooks_.shaft(0, ecom_lp, 1, etur_lp, 1, ecorr_[0], n1,
                   config_.inertia_lp),
      hooks_.shaft(1, ecom_hp, 1, etur_hp, 1, ecorr_[1], n2,
                   config_.inertia_hp),
  };
  if (vol) {
    // Plenum filling/emptying: the nozzle passes what the plenum
    // pressure drives through it; any imbalance charges the volume.
    perf.accelerations.push_back(
        volume_dpdt(st6, config_.mixer_volume_m3, st5.W + st16d.W, noz[0]));
  }
  return perf;
}

}  // namespace npss::tess
