// Gas thermodynamics for the 1-D engine model: a calorically-imperfect
// perfect gas with temperature- and fuel-air-ratio-dependent specific heat,
// plus the standard-atmosphere flight conditions the executive's
// "operating conditions" selection needs (§2.4: high/low altitude, etc.).
#pragma once

namespace npss::tess {

/// Gas constant for air / lean combustion products [J/(kg K)].
constexpr double kGasConstant = 287.05;
/// Lower heating value of jet fuel [J/kg].
constexpr double kFuelLhv = 43.1e6;
/// Sea-level static reference conditions.
constexpr double kTref = 288.15;   // K
constexpr double kPref = 101325.0; // Pa

/// Specific heat at constant pressure [J/(kg K)] as a function of total
/// temperature and fuel-air ratio. Linear-in-T fit adequate for a level-1
/// thermodynamic model (the paper's fidelity level 1, §2.1).
double cp(double Tt, double far = 0.0);

/// Ratio of specific heats.
double gamma(double Tt, double far = 0.0);

/// Specific enthalpy relative to kTref [J/kg] (analytic integral of cp).
double enthalpy(double Tt, double far = 0.0);

/// Invert enthalpy(T) = h for T (Newton; exact to 1e-9 relative).
double temperature_from_enthalpy(double h, double far = 0.0);

/// Total state of a gas stream at a station.
struct GasState {
  double W = 0.0;    ///< mass flow [kg/s]
  double Tt = kTref; ///< total temperature [K]
  double Pt = kPref; ///< total pressure [Pa]
  double far = 0.0;  ///< fuel-air ratio

  double theta() const { return Tt / kTref; }
  double delta() const { return Pt / kPref; }
  /// Corrected mass flow [kg/s].
  double corrected_flow() const;
};

/// Ambient/flight conditions feeding the inlet.
struct FlightCondition {
  double altitude_m = 0.0;
  double mach = 0.0;
  double dT_isa = 0.0;  ///< temperature offset from standard day

  double ambient_pressure() const;
  double ambient_temperature() const;
  /// Free-stream total state per compressible relations.
  double total_pressure() const;
  double total_temperature() const;
};

/// 1976 standard atmosphere (troposphere + lower stratosphere).
double isa_pressure(double altitude_m);
double isa_temperature(double altitude_m);

}  // namespace npss::tess
