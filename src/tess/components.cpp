#include "tess/components.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace npss::tess {

InletResult inlet(const FlightCondition& flight, double mass_flow) {
  InletResult r;
  const double mach = flight.mach;
  // MIL-E-5008B ram recovery: 1.0 subsonic, degrading supersonically.
  double recovery = 1.0;
  if (mach > 1.0) {
    recovery = 1.0 - 0.075 * std::pow(mach - 1.0, 1.35);
  }
  r.out.W = mass_flow;
  r.out.Tt = flight.total_temperature();
  r.out.Pt = flight.total_pressure() * recovery;
  r.out.far = 0.0;
  const double a0 =
      std::sqrt(gamma(flight.ambient_temperature()) * kGasConstant *
                flight.ambient_temperature());
  r.ram_drag = mass_flow * mach * a0;
  return r;
}

GasState duct(const GasState& in, double dp_fraction) {
  GasState out = in;
  out.Pt = in.Pt * (1.0 - dp_fraction);
  return out;
}

BleedResult bleed(const GasState& in, double fraction) {
  if (fraction < 0.0 || fraction >= 1.0) {
    throw util::ModelError("bleed fraction out of [0,1)");
  }
  BleedResult r;
  r.out = in;
  r.out.W = in.W * (1.0 - fraction);
  r.bleed = in;
  r.bleed.W = in.W * fraction;
  return r;
}

CompressorResult compressor(const GasState& in, const CompressorMap& map,
                            double n_rpm, double n_design_rpm) {
  CompressorResult r;
  const double nc_rel =
      (n_rpm / std::sqrt(in.theta())) / n_design_rpm;
  r.point = map.at_flow(nc_rel, in.corrected_flow());
  const double g = gamma(in.Tt, in.far);
  const double pr = std::max(r.point.pr, 1.0 + 1e-9);
  const double t_ratio_ideal = std::pow(pr, (g - 1.0) / g);
  const double dT_ideal = in.Tt * (t_ratio_ideal - 1.0);
  const double dT = dT_ideal / std::max(r.point.eff, 1e-3);
  r.out = in;
  r.out.Tt = in.Tt + dT;
  r.out.Pt = in.Pt * pr;
  const double dh = enthalpy(r.out.Tt, in.far) - enthalpy(in.Tt, in.far);
  r.power = in.W * dh;
  const double omega = std::max(n_rpm, 1.0) * kRpmToRad;
  r.torque = r.power / omega;
  r.surge_margin = map.surge_margin(r.point, nc_rel);
  return r;
}

CombustorResult combustor(const GasState& in, double fuel_flow, double eff,
                          double dp_fraction) {
  CombustorResult r;
  r.fuel_flow = fuel_flow;
  const double w_out = in.W + fuel_flow;
  const double far_out = (in.W * in.far + fuel_flow) / std::max(in.W, 1e-9);
  // Energy balance: W_out h(T4) = W_in h(T3) + eff Wf LHV.
  const double h_out =
      (in.W * enthalpy(in.Tt, in.far) + eff * fuel_flow * kFuelLhv) / w_out;
  r.out.W = w_out;
  r.out.far = far_out;
  r.out.Tt = temperature_from_enthalpy(h_out, far_out);
  r.out.Pt = in.Pt * (1.0 - dp_fraction);
  return r;
}

CombustorResult combustor_to_temperature(const GasState& in, double t4,
                                         double eff, double dp_fraction) {
  // Solve for Wf: W_out h(T4,far') = W_in h(T3) + eff Wf LHV, two fixed
  // point sweeps suffice since far' barely moves h.
  double wf = in.W * 0.02;
  for (int i = 0; i < 20; ++i) {
    const double w_out = in.W + wf;
    const double far_out = (in.W * in.far + wf) / in.W;
    const double need =
        w_out * enthalpy(t4, far_out) - in.W * enthalpy(in.Tt, in.far);
    const double wf_new = need / (eff * kFuelLhv);
    if (std::abs(wf_new - wf) < 1e-12 * std::max(1.0, wf)) {
      wf = wf_new;
      break;
    }
    wf = wf_new;
  }
  return combustor(in, std::max(wf, 0.0), eff, dp_fraction);
}

TurbineResult turbine(const GasState& in, const TurbineMap& map, double pr,
                      double n_rpm, double n_design_rpm) {
  TurbineResult r;
  pr = std::max(pr, 1.0 + 1e-6);
  const double nc_rel = (n_rpm / std::sqrt(in.theta())) / n_design_rpm;
  r.point = map.at(nc_rel, pr);
  const double g = gamma(in.Tt, in.far);
  const double t_ratio_ideal = std::pow(pr, -(g - 1.0) / g);
  const double dT = in.Tt * (1.0 - t_ratio_ideal) * r.point.eff;
  r.out = in;
  r.out.Tt = in.Tt - dT;
  r.out.Pt = in.Pt / pr;
  const double dh = enthalpy(in.Tt, in.far) - enthalpy(r.out.Tt, in.far);
  r.power = in.W * dh;
  const double omega = std::max(n_rpm, 1.0) * kRpmToRad;
  r.torque = r.power / omega;
  // Map flow demand back to physical corrected flow at the inlet station:
  // FP = W sqrt(Tt)/Pt with Pt in kPa.
  r.flow_demand = r.point.flow_parameter * (in.Pt / 1000.0) / std::sqrt(in.Tt);
  return r;
}

MixerResult mix(const GasState& a, const GasState& b, double dp_fraction) {
  MixerResult r;
  const double w = a.W + b.W;
  const double h =
      (a.W * enthalpy(a.Tt, a.far) + b.W * enthalpy(b.Tt, b.far)) / w;
  const double far = (a.W * a.far + b.W * b.far) / w;
  r.out.W = w;
  r.out.far = far;
  r.out.Tt = temperature_from_enthalpy(h, far);
  // Mass-flow-weighted total pressure, then the mixer duct loss.
  const double pt = (a.W * a.Pt + b.W * b.Pt) / w;
  r.out.Pt = pt * (1.0 - dp_fraction);
  r.pressure_imbalance = (a.Pt - b.Pt) / a.Pt;
  return r;
}

double volume_dpdt(const GasState& state, double volume_m3, double w_in,
                   double w_out) {
  const double g = gamma(state.Tt, state.far);
  return g * kGasConstant * state.Tt * (w_in - w_out) / volume_m3;
}

NozzleResult nozzle(const GasState& in, double area_m2, double p_ambient) {
  NozzleResult r;
  const double g = gamma(in.Tt, in.far);
  const double crit = std::pow((g + 1.0) / 2.0, g / (g - 1.0));
  const double pr = in.Pt / p_ambient;
  const double gm1 = g - 1.0;
  if (pr >= crit) {
    r.choked = true;
    // Choked mass flow: W = A Pt sqrt(g/(R Tt)) (2/(g+1))^((g+1)/(2(g-1)))
    r.w_required = area_m2 * in.Pt *
                   std::sqrt(g / (kGasConstant * in.Tt)) *
                   std::pow(2.0 / (g + 1.0), (g + 1.0) / (2.0 * gm1));
    const double t_throat = in.Tt * 2.0 / (g + 1.0);
    r.exit_velocity = std::sqrt(g * kGasConstant * t_throat);
    const double p_throat = in.Pt / crit;
    r.thrust = r.w_required * r.exit_velocity +
               (p_throat - p_ambient) * area_m2;
  } else {
    r.choked = false;
    const double m2 =
        2.0 / gm1 * (std::pow(pr, gm1 / g) - 1.0);
    const double mach = std::sqrt(std::max(m2, 0.0));
    const double t_exit = in.Tt / (1.0 + 0.5 * gm1 * m2);
    const double p_exit = p_ambient;
    const double rho = p_exit / (kGasConstant * t_exit);
    r.exit_velocity = mach * std::sqrt(g * kGasConstant * t_exit);
    r.w_required = rho * area_m2 * r.exit_velocity;
    r.thrust = r.w_required * r.exit_velocity;
  }
  return r;
}

double setshaft(const double ecom[4], int incom, const double etur[4],
                int intur) {
  // Power-correction (mechanical efficiency) factor: a small loss per
  // attached component, the original's bookkeeping for bearing/windage
  // losses discovered during steady balance.
  (void)ecom;
  (void)etur;
  const double loss = 0.005 * (incom + intur);
  return 1.0 - std::min(loss, 0.05);
}

double shaft(const double ecom[4], int incom, const double etur[4], int intur,
             double ecorr, double xspool, double xmyi) {
  (void)incom;
  (void)intur;
  const double p_absorbed = ecom[0];
  const double p_delivered = etur[0];
  const double net = p_delivered * ecorr - p_absorbed;
  const double omega = std::max(xspool, 1.0) * kRpmToRad;
  // I omega domega/dt = P_net  ->  dN/dt in rpm/s.
  return net / (xmyi * omega) / kRpmToRad;
}

}  // namespace npss::tess
