// Mission flying — §2.4: "being able to 'start' the engine and 'fly' it
// through a flight profile".
//
// A FuelGovernor closes the loop the TESS user closed by hand through the
// fuel-flow widget: a rate-limited PI controller holding an HP-spool
// speed target. fly_mission() chains profile legs (each with its own
// flight condition and spool target), integrating the engine states with
// a zero-order-hold on the governor output — including the initial
// spool-up from sub-idle ("starting" the engine).
#pragma once

#include <string>
#include <vector>

#include "tess/engine.hpp"

namespace npss::tess {

struct GovernorConfig {
  double kp = 4e-4;        ///< kg/s per rpm of error
  double ki = 8e-4;        ///< kg/s per rpm-second of integrated error
  double wf_min = 0.08;    ///< flight-idle fuel flow [kg/s]
  double wf_max = 1.6;     ///< max fuel flow [kg/s]
  double rate_limit = 0.25; ///< max |dwf/dt| [kg/s per s]
  /// Acceleration schedule: fuel ceiling proportional to compressor
  /// discharge pressure (Wf/P3 limiting, the classic surge protection).
  double accel_wf_per_p3 = 0.55;  ///< kg/s per MPa of P3
};

/// Rate-limited PI governor on HP spool speed.
class FuelGovernor {
 public:
  FuelGovernor(GovernorConfig config, double initial_wf)
      : config_(config), wf_(initial_wf) {}

  /// One control update: returns the commanded fuel flow. `p3_pa` is the
  /// compressor discharge pressure feeding the acceleration schedule.
  double update(double n2_target, double n2_actual, double dt,
                double p3_pa);

  double fuel_flow() const { return wf_; }
  void reset(double wf) {
    wf_ = wf;
    integral_ = 0.0;
  }

 private:
  GovernorConfig config_;
  double wf_;
  double integral_ = 0.0;
};

struct MissionLeg {
  std::string name;
  double duration_s = 0.0;
  FlightCondition flight;
  double n2_target = 0.0;  ///< HP spool speed to hold [rpm]
};

struct MissionSample {
  double t = 0.0;
  std::size_t leg = 0;
  double wf = 0.0;
  Performance performance;
};

struct MissionResult {
  std::vector<MissionSample> history;
  double fuel_burned_kg = 0.0;
  double min_surge_margin = 1.0;
};

/// Fly `legs` in sequence starting from `initial_states` (e.g. a sub-idle
/// "engine start" condition). States carry across leg boundaries; flight
/// conditions step at them.
MissionResult fly_mission(EngineModel& engine,
                          const std::vector<MissionLeg>& legs,
                          std::vector<double> initial_states,
                          double initial_wf, const GovernorConfig& governor,
                          double dt, solvers::IntegratorKind integrator);

}  // namespace npss::tess
