// A higher-fidelity duct component — the zooming substrate (§2.3).
//
// The level-1 duct is a constant fractional total-pressure loss. This
// component computes the loss from the flow itself: a 2-D incompressible
// core-flow model of a duct with a wall contour, solved by Jacobi/SOR
// relaxation of the stream-function Laplacian on a structured grid, with
// the loss derived from the wall-velocity distribution (skin friction ~
// integral of V_wall^2, plus a diffusion penalty when the contour
// decelerates the flow). The relaxation sweeps run data-parallel — the
// "parallel algorithm encapsulated within a procedure" of Figure 1 when
// this component is exported through Schooner from a parallel machine.
//
// The absolute loss levels are calibrated so a straight duct at design
// flow reproduces the level-1 model's default loss, making the two
// fidelity levels substitutable in a zooming experiment.
#pragma once

#include <vector>

#include "tess/components.hpp"
#include "tess/gas.hpp"

namespace npss::tess {

struct HifiDuctConfig {
  int nx = 48;              ///< grid cells along the duct
  int ny = 16;              ///< grid cells across
  double length_m = 1.2;
  double radius_m = 0.35;   ///< inlet half-height
  /// Wall contour: fractional half-height change from inlet to exit
  /// (negative = contraction, positive = diffusion). 0 = straight.
  double contour = 0.0;
  /// Calibration: loss fraction of a straight duct at design flow.
  double design_dp = 0.02;
  double design_flow = 100.0;  ///< kg/s
  int relaxation_sweeps = 400;
  int threads = 0;          ///< workers for the parallel sweeps (0 = auto)
};

struct HifiDuctResult {
  GasState out;
  double dp_fraction = 0.0;      ///< computed total-pressure loss
  double max_wall_velocity = 0.0;///< of the normalized solution
  int sweeps = 0;
  double residual = 0.0;         ///< final relaxation residual
};

/// Solve the duct at the given inflow and return the downstream state.
HifiDuctResult hifi_duct(const GasState& in, const HifiDuctConfig& config);

/// The normalized stream-function solution (for tests/visualization):
/// row-major (ny+1) x (nx+1).
std::vector<double> hifi_duct_streamfunction(const HifiDuctConfig& config);

}  // namespace npss::tess
