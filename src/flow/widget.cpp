#include "flow/widget.hpp"

#include <algorithm>

namespace npss::flow {

using util::WidgetError;

std::string_view widget_kind_name(WidgetKind kind) {
  switch (kind) {
    case WidgetKind::kDial: return "dial";
    case WidgetKind::kTypeinReal: return "typein-real";
    case WidgetKind::kTypeinInteger: return "typein-integer";
    case WidgetKind::kTypeinString: return "typein-string";
    case WidgetKind::kRadioButtons: return "radio-buttons";
    case WidgetKind::kBrowser: return "browser";
    case WidgetKind::kToggle: return "toggle";
  }
  return "?";
}

void Widget::set_real(double v) {
  if (kind_ != WidgetKind::kDial && kind_ != WidgetKind::kTypeinReal) {
    throw WidgetError("widget '" + name_ + "' (" +
                      std::string(widget_kind_name(kind_)) +
                      ") does not take a real value");
  }
  if (min_ && v < *min_) {
    throw WidgetError("widget '" + name_ + "': " + std::to_string(v) +
                      " below minimum " + std::to_string(*min_));
  }
  if (max_ && v > *max_) {
    throw WidgetError("widget '" + name_ + "': " + std::to_string(v) +
                      " above maximum " + std::to_string(*max_));
  }
  value_ = uts::Value::real(v);
  mark();
}

void Widget::set_integer(std::int64_t v) {
  if (kind_ != WidgetKind::kTypeinInteger) {
    throw WidgetError("widget '" + name_ + "' does not take an integer");
  }
  value_ = uts::Value::integer(v);
  mark();
}

void Widget::set_text(const std::string& v) {
  if (kind_ != WidgetKind::kTypeinString && kind_ != WidgetKind::kBrowser) {
    throw WidgetError("widget '" + name_ + "' does not take text");
  }
  value_ = uts::Value::str(v);
  mark();
}

void Widget::select(const std::string& choice) {
  if (kind_ != WidgetKind::kRadioButtons) {
    throw WidgetError("widget '" + name_ + "' is not radio buttons");
  }
  if (std::find(choices_.begin(), choices_.end(), choice) == choices_.end()) {
    throw WidgetError("widget '" + name_ + "': no choice '" + choice + "'");
  }
  value_ = uts::Value::str(choice);
  mark();
}

void Widget::set_on(bool v) {
  if (kind_ != WidgetKind::kToggle) {
    throw WidgetError("widget '" + name_ + "' is not a toggle");
  }
  value_ = uts::Value::integer(v ? 1 : 0);
  mark();
}

void Widget::set_from_text(const std::string& text) {
  switch (kind_) {
    case WidgetKind::kDial:
    case WidgetKind::kTypeinReal:
      set_real(std::stod(text));
      return;
    case WidgetKind::kTypeinInteger:
      set_integer(std::stoll(text));
      return;
    case WidgetKind::kTypeinString:
    case WidgetKind::kBrowser:
      set_text(text);
      return;
    case WidgetKind::kRadioButtons:
      select(text);
      return;
    case WidgetKind::kToggle:
      set_on(text == "1" || text == "true" || text == "on");
      return;
  }
  throw WidgetError("widget '" + name_ + "': cannot parse '" + text + "'");
}

}  // namespace npss::flow
