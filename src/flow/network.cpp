#include "flow/network.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/status.hpp"

namespace npss::flow {

using util::GraphError;

namespace {

/// Run one module's compute, timed into the scheduler's registry slots.
/// Aggregated (no per-execution spans): solver loops evaluate the network
/// thousands of times per run.
void compute_instrumented(Module& module) {
  if (!obs::enabled()) {
    module.compute();
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  module.compute();
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  obs::Registry& reg = obs::Registry::global();
  reg.counter("flow.scheduler.executions").add();
  reg.histogram("flow.scheduler.module_evaluate_us").record(us);
}

}  // namespace

Network::~Network() {
  try {
    clear();
  } catch (...) {
  }
}

Module& Network::add(const std::string& instance_name,
                     std::unique_ptr<Module> module) {
  if (nodes_.contains(instance_name)) {
    throw GraphError("module instance '" + instance_name +
                     "' already in network");
  }
  module->instance_name_ = instance_name;
  module->network_ = this;
  ModuleSpec spec(*module);
  module->spec(spec);
  Module& ref = *module;
  nodes_[instance_name] = Node{std::move(module), false};
  insertion_order_.push_back(instance_name);
  invalidate_topology();
  return ref;
}

Module& Network::add(const std::string& instance_name,
                     const std::string& type_name) {
  return add(instance_name, ModuleFactory::instance().make(type_name));
}

void Network::connect(const std::string& src, const std::string& src_port,
                      const std::string& dst, const std::string& dst_port) {
  Module& src_mod = module(src);
  Module& dst_mod = module(dst);
  OutputPort* out = src_mod.find_output(src_port);
  if (!out) {
    throw GraphError("module '" + src + "' has no output '" + src_port + "'");
  }
  InputPort* in = dst_mod.find_input(dst_port);
  if (!in) {
    throw GraphError("module '" + dst + "' has no input '" + dst_port + "'");
  }
  if (in->connected()) {
    throw GraphError("input '" + dst + "." + dst_port +
                     "' already has a source");
  }
  if (out->type != in->type) {
    throw GraphError("type mismatch connecting " + src + "." + src_port +
                     " (" + out->type.to_string() + ") to " + dst + "." +
                     dst_port + " (" + in->type.to_string() + ")");
  }
  if (src == dst || reachable(dst, src)) {
    throw GraphError("connection " + src + " -> " + dst +
                     " would create a cycle");
  }
  in->source_module = src;
  in->source_port = src_port;
  connections_.push_back(Connection{src, src_port, dst, dst_port});
  invalidate_topology();
}

void Network::disconnect(const std::string& dst, const std::string& dst_port) {
  Module& dst_mod = module(dst);
  InputPort* in = dst_mod.find_input(dst_port);
  if (!in || !in->connected()) {
    throw GraphError("input '" + dst + "." + dst_port + "' is not connected");
  }
  in->source_module.clear();
  in->source_port.clear();
  std::erase_if(connections_, [&](const Connection& c) {
    return c.dst_module == dst && c.dst_port == dst_port;
  });
  // Edge removal changes longest-path depths, so the wavefront levels the
  // scheduler executes must be rebuilt before the next evaluate().
  invalidate_topology();
}

void Network::remove(const std::string& instance_name) {
  auto it = nodes_.find(instance_name);
  if (it == nodes_.end()) {
    throw GraphError("no module instance '" + instance_name + "'");
  }
  it->second.module->destroy();
  // Drop connections touching the module and clear downstream sources.
  for (const Connection& c : connections_) {
    if (c.src_module == instance_name) {
      if (auto dst = nodes_.find(c.dst_module); dst != nodes_.end()) {
        if (InputPort* in = dst->second.module->find_input(c.dst_port)) {
          in->source_module.clear();
          in->source_port.clear();
        }
      }
    }
  }
  std::erase_if(connections_, [&](const Connection& c) {
    return c.src_module == instance_name || c.dst_module == instance_name;
  });
  nodes_.erase(it);
  std::erase(insertion_order_, instance_name);
  invalidate_topology();
}

void Network::clear() {
  // Destroy in reverse insertion order (downstream modules usually joined
  // later), mirroring AVS clearing a network.
  for (auto it = insertion_order_.rbegin(); it != insertion_order_.rend();
       ++it) {
    auto node = nodes_.find(*it);
    if (node != nodes_.end()) node->second.module->destroy();
  }
  nodes_.clear();
  insertion_order_.clear();
  connections_.clear();
  invalidate_topology();
}

Module& Network::module(const std::string& instance_name) {
  auto it = nodes_.find(instance_name);
  if (it == nodes_.end()) {
    throw GraphError("no module instance '" + instance_name + "'");
  }
  return *it->second.module;
}

const Module& Network::module(const std::string& instance_name) const {
  return const_cast<Network*>(this)->module(instance_name);
}

bool Network::has(const std::string& instance_name) const {
  return nodes_.contains(instance_name);
}

bool Network::reachable(const std::string& from, const std::string& to) const {
  if (from == to) return true;
  std::vector<std::string> stack{from};
  std::set<std::string> seen;
  while (!stack.empty()) {
    std::string cur = std::move(stack.back());
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    for (const Connection& c : connections_) {
      if (c.src_module != cur) continue;
      if (c.dst_module == to) return true;
      stack.push_back(c.dst_module);
    }
  }
  return false;
}

void Network::ensure_topology() const {
  if (topo_valid_) return;
  std::map<std::string, int> indegree;
  for (const std::string& name : insertion_order_) indegree[name] = 0;
  for (const Connection& c : connections_) ++indegree[c.dst_module];
  // Kahn's algorithm, seeded in insertion order for stable scheduling.
  std::vector<std::string> ready;
  for (const std::string& name : insertion_order_) {
    if (indegree[name] == 0) ready.push_back(name);
  }
  std::vector<std::string> order;
  order.reserve(insertion_order_.size());
  std::size_t next = 0;
  while (next < ready.size()) {
    std::string cur = ready[next++];
    order.push_back(cur);
    for (const Connection& c : connections_) {
      if (c.src_module == cur && --indegree[c.dst_module] == 0) {
        ready.push_back(c.dst_module);
      }
    }
  }
  if (order.size() != insertion_order_.size()) {
    throw GraphError("network contains a cycle");
  }

  // Wavefront levels: a module's level is its longest path from a source,
  // so same-level modules cannot be connected (directly or transitively)
  // and may execute concurrently.
  std::map<std::string, std::size_t> depth;
  std::size_t max_depth = 0;
  for (const std::string& name : order) {
    std::size_t d = 0;
    for (const Connection& c : connections_) {
      if (c.dst_module == name) d = std::max(d, depth[c.src_module] + 1);
    }
    depth[name] = d;
    max_depth = std::max(max_depth, d);
  }
  std::vector<std::vector<std::string>> levels(order.empty() ? 0
                                                             : max_depth + 1);
  for (const std::string& name : order) levels[depth[name]].push_back(name);

  topo_cache_ = std::move(order);
  level_cache_ = std::move(levels);
  topo_valid_ = true;
}

const std::vector<std::string>& Network::topo_order() const {
  ensure_topology();
  return topo_cache_;
}

const std::vector<std::vector<std::string>>& Network::wavefronts() const {
  ensure_topology();
  return level_cache_;
}

std::vector<std::string> Network::module_names() const { return topo_order(); }

void Network::propagate(Module& module) {
  for (const Connection& c : connections_) {
    if (c.src_module != module.instance_name()) continue;
    OutputPort* out = module.find_output(c.src_port);
    if (!out || !out->value) continue;
    Node& dst = nodes_.at(c.dst_module);
    InputPort* in = dst.module->find_input(c.dst_port);
    in->value = *out->value;
    dst.fresh_input = true;
  }
}

void Network::run_level(const std::vector<std::string>& level,
                        bool only_changed, int& executed) {
  std::vector<Node*> fire;
  fire.reserve(level.size());
  for (const std::string& name : level) {
    Node& node = nodes_.at(name);
    if (only_changed && !node.fresh_input && !node.module->widgets_changed()) {
      continue;
    }
    fire.push_back(&node);
  }
  if (fire.empty()) return;
  if (obs::enabled()) {
    obs::Registry::global()
        .histogram("flow.scheduler.wavefront_width")
        .record(static_cast<double>(fire.size()));
  }

  // Per-fire error slot (parallel phase writes disjoint indices, so no
  // lock); empty = the module computed cleanly.
  std::vector<std::string> errors(fire.size());
  auto compute_guarded = [this, &fire, &errors](std::size_t i) {
    if (!continue_on_error_) {
      compute_instrumented(*fire[i]->module);
      return;
    }
    try {
      compute_instrumented(*fire[i]->module);
    } catch (const std::exception& e) {
      errors[i] = e.what();
      if (errors[i].empty()) errors[i] = "unknown error";
    }
  };
  auto index_of = [&fire](Module* m) -> std::size_t {
    for (std::size_t i = 0; i < fire.size(); ++i) {
      if (fire[i]->module.get() == m) return i;
    }
    return 0;  // unreachable: m always comes from fire
  };

  // Compute phase: same-level modules are independent by construction, so
  // thread-safe ones may run concurrently. Modules opting out via
  // thread_safe() == false run one at a time afterwards.
  if (parallel_ && fire.size() >= 2) {
    std::vector<Module*> concurrent;
    concurrent.reserve(fire.size());
    for (Node* node : fire) {
      if (node->module->thread_safe()) concurrent.push_back(node->module.get());
    }
    if (concurrent.size() >= 2) {
      util::parallel_for(
          0, concurrent.size(),
          [&concurrent, &compute_guarded, &index_of](std::size_t i) {
            compute_guarded(index_of(concurrent[i]));
          },
          workers_);
    } else {
      for (Module* m : concurrent) compute_guarded(index_of(m));
    }
    for (std::size_t i = 0; i < fire.size(); ++i) {
      if (!fire[i]->module->thread_safe()) compute_guarded(i);
    }
  } else {
    for (std::size_t i = 0; i < fire.size(); ++i) compute_guarded(i);
  }

  // Bookkeeping + propagation stay sequential in topo order, so the values
  // downstream modules observe are exactly the sequential schedule's.
  // A failed module's outputs are NOT propagated: downstream keeps the
  // previous values (the degraded-but-running behavior).
  for (std::size_t i = 0; i < fire.size(); ++i) {
    Node* node = fire[i];
    node->module->clear_widget_changes();
    node->fresh_input = false;
    if (!errors[i].empty()) {
      module_errors_.emplace_back(node->module->instance_name(), errors[i]);
      NPSS_LOG_WARN("flow", "module '", node->module->instance_name(),
                    "' failed, continuing without it: ", errors[i]);
      if (obs::enabled()) {
        obs::Registry::global().counter("flow.scheduler.module_errors").add();
      }
      continue;
    }
    ++executions_;
    ++executed;
    propagate(*node->module);
  }
}

int Network::evaluate() {
  ensure_topology();
  int executed = 0;
  for (std::size_t l = 0; l < level_cache_.size(); ++l) {
    run_level(level_cache_[l], /*only_changed=*/false, executed);
  }
  return executed;
}

int Network::run_changed() {
  ensure_topology();
  int executed = 0;
  for (std::size_t l = 0; l < level_cache_.size(); ++l) {
    run_level(level_cache_[l], /*only_changed=*/true, executed);
  }
  return executed;
}

std::string Network::save_to_text() const {
  std::ostringstream os;
  os << "# flow network\n";
  for (const std::string& name : insertion_order_) {
    const Module& mod = *nodes_.at(name).module;
    os << "module " << name << " " << mod.type_name() << "\n";
    for (const std::string& wname : mod.widget_names()) {
      const Widget& w = mod.widget(wname);
      std::string text;
      if (w.value().is_string()) {
        text = w.text();
      } else if (w.value().is_integer()) {
        text = std::to_string(w.integer());
      } else {
        std::ostringstream vs;
        vs.precision(17);
        vs << w.real();
        text = vs.str();
      }
      os << "widget " << name << " " << wname << " " << text << "\n";
    }
  }
  for (const Connection& c : connections_) {
    os << "connect " << c.src_module << " " << c.src_port << " "
       << c.dst_module << " " << c.dst_port << "\n";
  }
  return os.str();
}

void Network::load_from_text(const std::string& text) {
  if (!nodes_.empty()) {
    throw GraphError("load_from_text requires an empty network");
  }
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string verb;
    ls >> verb;
    if (verb == "module") {
      std::string instance, type;
      ls >> instance >> type;
      add(instance, type);
    } else if (verb == "widget") {
      std::string instance, widget_name;
      ls >> instance >> widget_name;
      std::string value;
      std::getline(ls, value);
      if (!value.empty() && value[0] == ' ') value.erase(0, 1);
      module(instance).widget(widget_name).set_from_text(value);
    } else if (verb == "connect") {
      std::string src, src_port, dst, dst_port;
      ls >> src >> src_port >> dst >> dst_port;
      connect(src, src_port, dst, dst_port);
    } else if (verb == "loop") {
      // Solver-loop declarations are flow_lint metadata (a declared loop
      // legalizes a cycle for the static pass); the executive itself
      // schedules only the DAG, so the line is ignored here.
    } else {
      throw GraphError("network file line " + std::to_string(lineno) +
                       ": unknown verb '" + verb + "'");
    }
  }
}

int evaluate_networks(const std::vector<Network*>& networks, int workers) {
  std::atomic<int> executed{0};
  util::parallel_for(
      0, networks.size(),
      [&](std::size_t i) {
        if (networks[i] == nullptr) return;
        executed.fetch_add(networks[i]->evaluate(),
                           std::memory_order_relaxed);
      },
      workers);
  if (obs::enabled()) {
    obs::Registry::global()
        .counter("flow.scheduler.concurrent_line_sweeps")
        .add(static_cast<double>(networks.size()));
  }
  return executed.load();
}

}  // namespace npss::flow
