#include "flow/module.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace npss::flow {

using util::GraphError;
using util::WidgetError;

void ModuleSpec::input(const std::string& name, uts::Type type) {
  if (module_->find_input(name)) {
    throw GraphError("duplicate input port '" + name + "'");
  }
  module_->inputs_.push_back(InputPort{name, std::move(type), {}, "", ""});
}

void ModuleSpec::output(const std::string& name, uts::Type type) {
  if (module_->find_output(name)) {
    throw GraphError("duplicate output port '" + name + "'");
  }
  module_->outputs_.push_back(OutputPort{name, std::move(type), {}});
}

namespace {
void add_widget(Module& module, std::unique_ptr<Widget> widget,
                std::vector<std::unique_ptr<Widget>>& widgets) {
  if (module.has_widget(widget->name())) {
    throw WidgetError("duplicate widget '" + widget->name() + "'");
  }
  widgets.push_back(std::move(widget));
}
}  // namespace

void ModuleSpec::dial(const std::string& name, double initial, double min,
                      double max) {
  add_widget(*module_,
             std::make_unique<Widget>(name, WidgetKind::kDial,
                                      uts::Value::real(initial),
                                      std::vector<std::string>{}, min, max),
             module_->widgets_);
}

void ModuleSpec::typein_real(const std::string& name, double initial) {
  add_widget(*module_,
             std::make_unique<Widget>(name, WidgetKind::kTypeinReal,
                                      uts::Value::real(initial)),
             module_->widgets_);
}

void ModuleSpec::typein_integer(const std::string& name,
                                std::int64_t initial) {
  add_widget(*module_,
             std::make_unique<Widget>(name, WidgetKind::kTypeinInteger,
                                      uts::Value::integer(initial)),
             module_->widgets_);
}

void ModuleSpec::typein_string(const std::string& name, std::string initial) {
  add_widget(*module_,
             std::make_unique<Widget>(name, WidgetKind::kTypeinString,
                                      uts::Value::str(std::move(initial))),
             module_->widgets_);
}

void ModuleSpec::radio_buttons(const std::string& name,
                               std::vector<std::string> choices,
                               const std::string& initial) {
  if (std::find(choices.begin(), choices.end(), initial) == choices.end()) {
    throw WidgetError("radio buttons '" + name + "': initial choice '" +
                      initial + "' not among choices");
  }
  add_widget(*module_,
             std::make_unique<Widget>(name, WidgetKind::kRadioButtons,
                                      uts::Value::str(initial),
                                      std::move(choices)),
             module_->widgets_);
}

void ModuleSpec::browser(const std::string& name, std::string initial_path) {
  add_widget(*module_,
             std::make_unique<Widget>(name, WidgetKind::kBrowser,
                                      uts::Value::str(std::move(initial_path))),
             module_->widgets_);
}

void ModuleSpec::toggle(const std::string& name, bool initial) {
  add_widget(*module_,
             std::make_unique<Widget>(name, WidgetKind::kToggle,
                                      uts::Value::integer(initial ? 1 : 0)),
             module_->widgets_);
}

Widget& Module::widget(const std::string& name) {
  for (auto& w : widgets_) {
    if (w->name() == name) return *w;
  }
  throw WidgetError("module '" + instance_name_ + "': no widget '" + name +
                    "'");
}

const Widget& Module::widget(const std::string& name) const {
  return const_cast<Module*>(this)->widget(name);
}

bool Module::has_widget(const std::string& name) const {
  for (const auto& w : widgets_) {
    if (w->name() == name) return true;
  }
  return false;
}

std::vector<std::string> Module::widget_names() const {
  std::vector<std::string> names;
  names.reserve(widgets_.size());
  for (const auto& w : widgets_) names.push_back(w->name());
  return names;
}

const uts::Value& Module::in(const std::string& name) const {
  for (const InputPort& port : inputs_) {
    if (port.name == name) {
      if (!port.value) {
        throw GraphError("module '" + instance_name_ + "': input '" + name +
                         "' has no value yet");
      }
      return *port.value;
    }
  }
  throw GraphError("module '" + instance_name_ + "': no input port '" + name +
                   "'");
}

bool Module::has_in(const std::string& name) const {
  for (const InputPort& port : inputs_) {
    if (port.name == name) return port.value.has_value();
  }
  return false;
}

void Module::out(const std::string& name, uts::Value value) {
  OutputPort* port = find_output(name);
  if (!port) {
    throw GraphError("module '" + instance_name_ + "': no output port '" +
                     name + "'");
  }
  uts::check_value(port->type, value);
  port->value = std::move(value);
}

bool Module::widgets_changed() const {
  for (const auto& w : widgets_) {
    if (w->changed()) return true;
  }
  return false;
}

void Module::clear_widget_changes() {
  for (auto& w : widgets_) w->clear_changed();
}

InputPort* Module::find_input(const std::string& name) {
  for (InputPort& port : inputs_) {
    if (port.name == name) return &port;
  }
  return nullptr;
}

OutputPort* Module::find_output(const std::string& name) {
  for (OutputPort& port : outputs_) {
    if (port.name == name) return &port;
  }
  return nullptr;
}

ModuleFactory& ModuleFactory::instance() {
  static ModuleFactory factory;
  return factory;
}

void ModuleFactory::register_type(const std::string& type_name, Maker maker) {
  makers_[type_name] = std::move(maker);
}

bool ModuleFactory::knows(const std::string& type_name) const {
  return makers_.contains(type_name);
}

std::unique_ptr<Module> ModuleFactory::make(const std::string& type_name) const {
  auto it = makers_.find(type_name);
  if (it == makers_.end()) {
    throw GraphError("no module type '" + type_name + "' registered");
  }
  return it->second();
}

std::vector<std::string> ModuleFactory::type_names() const {
  std::vector<std::string> names;
  names.reserve(makers_.size());
  for (const auto& [name, maker] : makers_) names.push_back(name);
  return names;
}

}  // namespace npss::flow
