// Small general-purpose modules: a constant source, a value monitor (the
// stand-in for AVS's visualization sinks — §2.3's "ability to handle
// multiple graphics packages" becomes a pluggable sink), and a CSV trace
// writer used by the examples to dump transient histories.
#pragma once

#include <functional>
#include <sstream>
#include <vector>

#include "flow/module.hpp"

namespace npss::flow {

/// Emits the value of its "value" widget on its "out" port.
class ConstantModule final : public Module {
 public:
  std::string type_name() const override { return "constant"; }
  void spec(ModuleSpec& spec) override {
    spec.typein_real("value", 0.0);
    spec.output("out", uts::Type::real_double());
  }
  void compute() override { out_real("out", widget("value").real()); }
};

/// Records every value arriving on "in"; the visualization stand-in.
class MonitorModule final : public Module {
 public:
  std::string type_name() const override { return "monitor"; }
  void spec(ModuleSpec& spec) override {
    spec.input("in", uts::Type::real_double());
  }
  void compute() override {
    if (has_in("in")) history_.push_back(in_real("in"));
  }
  const std::vector<double>& history() const { return history_; }
  double last() const { return history_.empty() ? 0.0 : history_.back(); }
  void reset() { history_.clear(); }

 private:
  std::vector<double> history_;
};

/// Collects named real channels row-by-row and renders CSV text.
class CsvTraceModule final : public Module {
 public:
  explicit CsvTraceModule(std::vector<std::string> channels)
      : channels_(std::move(channels)) {}
  CsvTraceModule() : CsvTraceModule({"in"}) {}

  std::string type_name() const override { return "csv-trace"; }
  void spec(ModuleSpec& spec) override {
    for (const std::string& c : channels_) {
      spec.input(c, uts::Type::real_double());
    }
  }
  void compute() override {
    std::vector<double> row;
    row.reserve(channels_.size());
    for (const std::string& c : channels_) {
      row.push_back(has_in(c) ? in_real(c) : 0.0);
    }
    rows_.push_back(std::move(row));
  }

  std::string csv() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      os << (i ? "," : "") << channels_[i];
    }
    os << "\n";
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        os << (i ? "," : "") << row[i];
      }
      os << "\n";
    }
    return os.str();
  }
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> channels_;
  std::vector<std::vector<double>> rows_;
};

/// An ASCII strip chart — the stand-in for an AVS graph viewer (§2.3's
/// "handle multiple graphics packages": any sink can be swapped in, this
/// one renders to text). Records values from "in" and renders a
/// fixed-height chart over the recorded span.
class StripChartModule final : public Module {
 public:
  std::string type_name() const override { return "strip-chart"; }
  void spec(ModuleSpec& spec) override {
    spec.typein_integer("height", 10);
    spec.typein_integer("width", 64);
    spec.input("in", uts::Type::real_double());
  }
  void compute() override {
    if (has_in("in")) samples_.push_back(in_real("in"));
  }

  const std::vector<double>& samples() const { return samples_; }
  void reset() { samples_.clear(); }

  /// Render the chart ('#' marks, axis labels for min/max).
  std::string render() const;

 private:
  std::vector<double> samples_;
};

/// A monitor that opts out of wavefront concurrency — the stand-in for a
/// sink bound to a serial resource (a single plot window, an append-only
/// log). Placing one on a parallelizable level is legal but serializes it
/// behind its peers; flow_lint flags the placement as UTS407.
class SerialSinkModule final : public Module {
 public:
  std::string type_name() const override { return "serial-sink"; }
  void spec(ModuleSpec& spec) override {
    spec.input("in", uts::Type::real_double());
  }
  void compute() override {
    if (has_in("in")) history_.push_back(in_real("in"));
  }
  bool thread_safe() const override { return false; }
  const std::vector<double>& history() const { return history_; }

 private:
  std::vector<double> history_;
};

/// Registers the basic module types with the ModuleFactory (idempotent).
void register_basic_modules();

}  // namespace npss::flow
