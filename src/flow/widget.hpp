// Widgets — the AVS control-panel elements the paper's prototype relies on
// (§2.4, §3.3): dials, type-in boxes, radio buttons for picking the remote
// machine, a type-in for the executable pathname, and file browsers for
// performance maps. A widget holds one uts::Value and validates updates
// against its kind.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "uts/value.hpp"
#include "util/status.hpp"

namespace npss::flow {

enum class WidgetKind : std::uint8_t {
  kDial = 0,        ///< bounded real
  kTypeinReal,      ///< unbounded real
  kTypeinInteger,
  kTypeinString,    ///< e.g. the remote executable pathname (§3.3)
  kRadioButtons,    ///< one-of-N strings, e.g. the remote machine (§3.3)
  kBrowser,         ///< file path chooser (performance maps)
  kToggle,          ///< boolean
};

std::string_view widget_kind_name(WidgetKind kind);

class Widget {
 public:
  Widget(std::string name, WidgetKind kind, uts::Value initial,
         std::vector<std::string> choices = {},
         std::optional<double> min = std::nullopt,
         std::optional<double> max = std::nullopt)
      : name_(std::move(name)),
        kind_(kind),
        value_(std::move(initial)),
        choices_(std::move(choices)),
        min_(min),
        max_(max) {}

  const std::string& name() const { return name_; }
  WidgetKind kind() const { return kind_; }
  const std::vector<std::string>& choices() const { return choices_; }

  double real() const { return value_.as_real(); }
  std::int64_t integer() const { return value_.as_integer(); }
  const std::string& text() const { return value_.as_string(); }
  bool on() const { return value_.as_integer() != 0; }
  const uts::Value& value() const { return value_; }

  /// Setters validate against the widget kind and bounds, throwing
  /// util::WidgetError on violations, and mark the widget changed so the
  /// scheduler re-executes the owning module.
  void set_real(double v);
  void set_integer(std::int64_t v);
  void set_text(const std::string& v);
  void select(const std::string& choice);  ///< radio buttons only
  void set_on(bool v);

  /// Parse-and-set from text (used by the network file loader).
  void set_from_text(const std::string& text);

  bool changed() const { return changed_; }
  void clear_changed() { changed_ = false; }

 private:
  void mark() { changed_ = true; }

  std::string name_;
  WidgetKind kind_;
  uts::Value value_;
  std::vector<std::string> choices_;
  std::optional<double> min_, max_;
  bool changed_ = true;  // initial value counts as a change
};

}  // namespace npss::flow
