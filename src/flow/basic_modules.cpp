#include "flow/basic_modules.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace npss::flow {

std::string StripChartModule::render() const {
  const int height =
      std::max<int>(2, static_cast<int>(widget("height").integer()));
  const int width =
      std::max<int>(8, static_cast<int>(widget("width").integer()));
  std::ostringstream os;
  if (samples_.empty()) {
    os << "(no samples)\n";
    return os.str();
  }
  const auto [lo_it, hi_it] =
      std::minmax_element(samples_.begin(), samples_.end());
  double lo = *lo_it, hi = *hi_it;
  if (hi - lo < 1e-12) hi = lo + 1.0;

  // Downsample (or stretch) the history onto `width` columns.
  std::vector<double> cols(width);
  for (int c = 0; c < width; ++c) {
    const std::size_t idx = std::min(
        samples_.size() - 1,
        static_cast<std::size_t>(static_cast<double>(c) * samples_.size() /
                                 width));
    cols[c] = samples_[idx];
  }

  for (int row = height - 1; row >= 0; --row) {
    const double band = (hi - lo) / height;
    const double threshold = lo + band * (row + 0.5);
    if (row == height - 1) {
      os << std::setw(12) << std::setprecision(5) << hi << " |";
    } else if (row == 0) {
      os << std::setw(12) << std::setprecision(5) << lo << " |";
    } else {
      os << std::string(12, ' ') << " |";
    }
    for (int c = 0; c < width; ++c) {
      os << (std::abs(cols[c] - threshold) <= band / 2 ? '#' : ' ');
    }
    os << "\n";
  }
  os << std::string(13, ' ') << '+' << std::string(width, '-') << "\n";
  return os.str();
}

void register_basic_modules() {
  static bool done = [] {
    ModuleFactory& f = ModuleFactory::instance();
    f.register_type("constant", [] { return std::make_unique<ConstantModule>(); });
    f.register_type("monitor", [] { return std::make_unique<MonitorModule>(); });
    f.register_type("csv-trace", [] { return std::make_unique<CsvTraceModule>(); });
    f.register_type("strip-chart",
                    [] { return std::make_unique<StripChartModule>(); });
    f.register_type("serial-sink",
                    [] { return std::make_unique<SerialSinkModule>(); });
    return true;
  }();
  (void)done;
}

}  // namespace npss::flow
