// The Network — the flow executive's equivalent of the AVS Network Editor
// workspace (§2.4): modules are added (dragged in), wired into a dataflow
// graph, saved to and reloaded from a text form, and executed by a
// scheduler that fires a module when its widgets or inputs change and
// propagates values downstream, modeling the airflow through the engine.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flow/module.hpp"

namespace npss::flow {

struct Connection {
  std::string src_module, src_port;
  std::string dst_module, dst_port;
};

class Network {
 public:
  Network() = default;
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- Editing (the Network Editor surface) ------------------------------
  /// Add a module instance; runs its spec(). The instance name must be
  /// unique in the network.
  Module& add(const std::string& instance_name,
              std::unique_ptr<Module> module);

  /// Add by registered type name.
  Module& add(const std::string& instance_name, const std::string& type_name);

  /// Wire src.out -> dst.in. Types must match; the edge must not create a
  /// cycle (AVS networks are dataflow DAGs). One input has one source.
  void connect(const std::string& src, const std::string& src_port,
               const std::string& dst, const std::string& dst_port);

  void disconnect(const std::string& dst, const std::string& dst_port);

  /// Remove a module: runs destroy() (where adapted modules issue
  /// sch_i_quit) and drops its connections.
  void remove(const std::string& instance_name);

  /// Remove every module (network cleared).
  void clear();

  // --- Access -------------------------------------------------------------
  Module& module(const std::string& instance_name);
  const Module& module(const std::string& instance_name) const;
  bool has(const std::string& instance_name) const;
  std::vector<std::string> module_names() const;  ///< topological order
  const std::vector<Connection>& connections() const { return connections_; }

  // --- Execution ------------------------------------------------------------
  /// Execute every module once, upstream-first, propagating port values.
  /// Returns the number of modules executed.
  ///
  /// Scheduling is by wavefront: modules are grouped into dependency
  /// levels (longest path from a source) computed from the cached topo
  /// order; same-level modules have no path between them, so the
  /// scheduler may run them concurrently (util::parallel_for), then
  /// propagates the level's outputs sequentially in topo order — the
  /// observable results are identical to the strict sequential sweep.
  int evaluate();

  /// Execute only modules whose widgets changed or that receive fresh
  /// values from an upstream execution, plus their downstream cone.
  int run_changed();

  /// Executions performed so far (scheduler metric).
  long executions() const { return executions_; }

  // --- Scheduler knobs ------------------------------------------------------
  /// Master switch for same-level concurrency (default on). Modules whose
  /// thread_safe() returns false always run sequentially either way.
  void set_parallel_evaluation(bool on) { parallel_ = on; }
  bool parallel_evaluation() const { return parallel_; }

  /// Worker cap for parallel levels; 0 = hardware concurrency.
  void set_parallel_workers(int workers) { workers_ = workers; }

  /// Graceful degradation (default off, matching the historical abort
  /// semantics): when on, a module whose compute() throws no longer
  /// aborts the sweep — the error is recorded in module_errors(), the
  /// module's outputs are not propagated (downstream keeps the previous
  /// values), and the rest of the wavefront runs normally. Built for
  /// remote-backed modules riding the fault-tolerant call path.
  void set_continue_on_error(bool on) { continue_on_error_ = on; }
  bool continue_on_error() const { return continue_on_error_; }

  /// (module instance, error message) pairs recorded since the last
  /// clear_module_errors(), in the order the failures were observed.
  const std::vector<std::pair<std::string, std::string>>& module_errors()
      const {
    return module_errors_;
  }
  void clear_module_errors() { module_errors_.clear(); }

  /// The dependency levels the wavefront scheduler executes (topo order
  /// within each level); recomputed lazily after edits.
  const std::vector<std::vector<std::string>>& wavefronts() const;

  // --- Persistence ------------------------------------------------------------
  /// Stable text form: modules, widget values, connections.
  std::string save_to_text() const;

  /// Rebuild from text (via the ModuleFactory). The network must be empty.
  void load_from_text(const std::string& text);

 private:
  struct Node {
    std::unique_ptr<Module> module;
    bool fresh_input = false;
  };

  /// Cached topological order; recomputed only after an edit
  /// (add/connect/disconnect/remove/clear) invalidated it.
  const std::vector<std::string>& topo_order() const;
  void invalidate_topology() { topo_valid_ = false; }
  void ensure_topology() const;
  void run_level(const std::vector<std::string>& level, bool only_changed,
                 int& executed);
  void propagate(Module& module);
  bool reachable(const std::string& from, const std::string& to) const;

  std::map<std::string, Node> nodes_;
  std::vector<std::string> insertion_order_;
  std::vector<Connection> connections_;
  long executions_ = 0;
  bool parallel_ = true;
  int workers_ = 0;
  bool continue_on_error_ = false;
  std::vector<std::pair<std::string, std::string>> module_errors_;
  mutable bool topo_valid_ = false;
  mutable std::vector<std::string> topo_cache_;
  mutable std::vector<std::vector<std::string>> level_cache_;
};

/// Concurrent-line execution (DESIGN.md §15): evaluate each network —
/// typically one per Schooner line — concurrently, up to `workers` at a
/// time (0 = hardware concurrency). Each network still runs its own
/// wavefront sweep internally; networks must not share modules. Returns
/// the total number of modules executed. If any sweep throws, the first
/// error is rethrown after every in-flight sweep finishes (matching
/// util::parallel_for semantics).
int evaluate_networks(const std::vector<Network*>& networks, int workers = 0);

}  // namespace npss::flow
