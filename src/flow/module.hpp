// The module abstraction of the flow executive, mirroring the AVS module
// lifecycle the paper adapts (§3.3): a `spec` function declaring data
// streams and widgets, a `compute` function run whenever the module is
// scheduled, and a `destroy` function run when the module is removed from
// a network (where the adapted TESS modules call sch_i_quit).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flow/widget.hpp"
#include "uts/types.hpp"
#include "uts/value.hpp"

namespace npss::flow {

class Module;

/// Builder handed to Module::spec() for declaring ports and widgets.
class ModuleSpec {
 public:
  explicit ModuleSpec(Module& module) : module_(&module) {}

  void input(const std::string& name, uts::Type type);
  void output(const std::string& name, uts::Type type);

  void dial(const std::string& name, double initial, double min, double max);
  void typein_real(const std::string& name, double initial);
  void typein_integer(const std::string& name, std::int64_t initial);
  void typein_string(const std::string& name, std::string initial);
  void radio_buttons(const std::string& name,
                     std::vector<std::string> choices,
                     const std::string& initial);
  void browser(const std::string& name, std::string initial_path);
  void toggle(const std::string& name, bool initial);

 private:
  Module* module_;
};

struct InputPort {
  std::string name;
  uts::Type type;
  std::optional<uts::Value> value;   ///< last value delivered
  std::string source_module;         ///< upstream connection (if any)
  std::string source_port;
  bool connected() const { return !source_module.empty(); }
};

struct OutputPort {
  std::string name;
  uts::Type type;
  std::optional<uts::Value> value;  ///< last computed value
};

class Network;

class Module {
 public:
  virtual ~Module() = default;

  /// The module's type name (stable key for the factory registry and the
  /// saved-network format).
  virtual std::string type_name() const = 0;

  /// Declare ports and widgets. Called once when the module enters a
  /// network.
  virtual void spec(ModuleSpec& spec) = 0;

  /// The module body, run each time the scheduler fires the module.
  virtual void compute() = 0;

  /// Teardown when removed from the network / the network is cleared.
  virtual void destroy() {}

  /// Opt-out knob for the wavefront scheduler: a module whose compute()
  /// touches shared mutable state (beyond its own ports/widgets and the
  /// thread-safe cluster/obs runtimes) should return false; the scheduler
  /// then runs it sequentially while thread-safe peers of the same
  /// dependency level execute concurrently.
  virtual bool thread_safe() const { return true; }

  // --- runtime access (valid after the module joined a network) ---------
  const std::string& instance_name() const { return instance_name_; }
  Network* network() { return network_; }

  Widget& widget(const std::string& name);
  const Widget& widget(const std::string& name) const;
  bool has_widget(const std::string& name) const;
  std::vector<std::string> widget_names() const;

  /// Input value access from compute(). Throws util::GraphError when the
  /// port has never received a value.
  const uts::Value& in(const std::string& name) const;
  bool has_in(const std::string& name) const;
  double in_real(const std::string& name) const { return in(name).as_real(); }

  /// Output from compute().
  void out(const std::string& name, uts::Value value);
  void out_real(const std::string& name, double v) {
    out(name, uts::Value::real(v));
  }

  const std::vector<InputPort>& inputs() const { return inputs_; }
  const std::vector<OutputPort>& outputs() const { return outputs_; }

  /// True if any widget changed since the last compute.
  bool widgets_changed() const;
  void clear_widget_changes();

 private:
  friend class ModuleSpec;
  friend class Network;

  InputPort* find_input(const std::string& name);
  OutputPort* find_output(const std::string& name);

  std::string instance_name_;
  Network* network_ = nullptr;
  std::vector<InputPort> inputs_;
  std::vector<OutputPort> outputs_;
  std::vector<std::unique_ptr<Widget>> widgets_;
};

/// Factory registry so saved networks can be reloaded by module type name.
class ModuleFactory {
 public:
  using Maker = std::function<std::unique_ptr<Module>()>;

  static ModuleFactory& instance();

  void register_type(const std::string& type_name, Maker maker);
  bool knows(const std::string& type_name) const;
  std::unique_ptr<Module> make(const std::string& type_name) const;
  std::vector<std::string> type_names() const;

 private:
  std::map<std::string, Maker> makers_;
};

}  // namespace npss::flow
