// The Schooner stub compiler.
//
// The original system shipped one stub compiler per supported language; it
// read UTS specification files and emitted the marshaling stubs gluing the
// user's code to the runtime (§3.1). This reproduction has two stub paths:
//
//  * the *dynamic* path used throughout the library — host.cpp/calling.cpp
//    interpret parsed signatures at call time; and
//  * this *static* generator, which emits compilable C++ source: a typed
//    client-stub class per import declaration and a dispatch-skeleton
//    per export declaration. It exists both as a library (these functions)
//    and a CLI tool (schooner-stubgen), and the generated client stubs are
//    functionally equivalent to hand-built RemoteProc calls — a test
//    compiles its output shape against golden files.
#pragma once

#include <string>

#include "uts/spec.hpp"

namespace npss::stubgen {

struct GeneratedStub {
  std::string header;  ///< C++ header text
  std::string source;  ///< C++ source text
};

/// C++ type used for a UTS type in generated code.
std::string cpp_type_for(const uts::Type& type);

/// Identifier-safe version of a procedure or parameter name.
std::string sanitize_identifier(const std::string& name);

/// Generate a client stub class for one import declaration: a constructor
/// taking SchoonerClient&, and a typed call() whose parameters mirror the
/// val/var parameters and whose result struct mirrors res/var parameters.
GeneratedStub generate_client_stub(const uts::ProcDecl& decl);

/// Generate a server dispatch skeleton for one export declaration: a
/// ProcedureDef factory binding a typed handler signature.
GeneratedStub generate_server_stub(const uts::ProcDecl& decl);

/// Generate a complete header+source pair for every declaration in a spec
/// file (imports -> client stubs, exports -> server skeletons). A
/// non-empty `spec_sha256` is embedded as `kSpecSha256` so a built binary
/// can be matched against the uts_check manifest that vetted its spec.
GeneratedStub generate_all(const uts::SpecFile& spec,
                           const std::string& header_name,
                           const std::string& spec_sha256 = "");

}  // namespace npss::stubgen
