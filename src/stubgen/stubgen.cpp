#include "stubgen/stubgen.hpp"

#include <cctype>
#include <sstream>

#include "uts/canonical.hpp"
#include "uts/marshal_plan.hpp"

namespace npss::stubgen {

using uts::DeclKind;
using uts::Param;
using uts::ParamMode;
using uts::ProcDecl;
using uts::Type;
using uts::TypeKind;

std::string cpp_type_for(const Type& type) {
  switch (type.kind()) {
    case TypeKind::kFloat: return "float";
    case TypeKind::kDouble: return "double";
    case TypeKind::kInteger: return "std::int32_t";
    case TypeKind::kByte: return "std::uint8_t";
    case TypeKind::kString: return "std::string";
    case TypeKind::kArray:
      return "std::array<" + cpp_type_for(type.element()) + ", " +
             std::to_string(type.array_size()) + ">";
    case TypeKind::kRecord: {
      // Records map to std::tuple in generated signatures.
      std::string out = "std::tuple<";
      bool first = true;
      for (const uts::Field& f : type.fields()) {
        if (!first) out += ", ";
        first = false;
        out += cpp_type_for(*f.type);
      }
      return out + ">";
    }
  }
  return "void";
}

std::string sanitize_identifier(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(
        (std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 'p');
  }
  return out;
}

namespace {

bool travels_in(const Param& p) {
  return p.mode == ParamMode::kVal || p.mode == ParamMode::kVar;
}

bool travels_out(const Param& p) {
  return p.mode == ParamMode::kRes || p.mode == ParamMode::kVar;
}

/// Expression converting a typed C++ argument into a uts::Value.
std::string to_value_expr(const Type& type, const std::string& var) {
  switch (type.kind()) {
    case TypeKind::kFloat:
    case TypeKind::kDouble:
      return "uts::Value::real(static_cast<double>(" + var + "))";
    case TypeKind::kInteger:
      return "uts::Value::integer(" + var + ")";
    case TypeKind::kByte:
      return "uts::Value::byte(" + var + ")";
    case TypeKind::kString:
      return "uts::Value::str(" + var + ")";
    case TypeKind::kArray: {
      std::ostringstream os;
      os << "[&]{ uts::ValueList items; items.reserve(" << type.array_size()
         << "); for (const auto& e : " << var << ") items.push_back("
         << to_value_expr(type.element(), "e")
         << "); return uts::Value::array(std::move(items)); }()";
      return os.str();
    }
    case TypeKind::kRecord: {
      std::ostringstream os;
      os << "[&]{ uts::ValueList fields;";
      std::size_t i = 0;
      for (const uts::Field& f : type.fields()) {
        os << " fields.push_back("
           << to_value_expr(*f.type, "std::get<" + std::to_string(i) + ">(" +
                                         var + ")")
           << ");";
        ++i;
      }
      os << " return uts::Value::record(std::move(fields)); }()";
      return os.str();
    }
  }
  return "uts::Value()";
}

/// Statement(s) converting a uts::Value expression into typed C++.
std::string from_value_expr(const Type& type, const std::string& value_expr) {
  switch (type.kind()) {
    case TypeKind::kFloat:
      return "static_cast<float>((" + value_expr + ").as_real())";
    case TypeKind::kDouble: return "(" + value_expr + ").as_real()";
    case TypeKind::kInteger:
      return "static_cast<std::int32_t>((" + value_expr + ").as_integer())";
    case TypeKind::kByte: return "(" + value_expr + ").as_byte()";
    case TypeKind::kString: return "(" + value_expr + ").as_string()";
    case TypeKind::kArray: {
      std::ostringstream os;
      os << "[&]{ " << cpp_type_for(type) << " out{}; const auto& items = ("
         << value_expr << ").items(); for (std::size_t i = 0; i < "
         << type.array_size() << "; ++i) out[i] = "
         << from_value_expr(type.element(), "items[i]")
         << "; return out; }()";
      return os.str();
    }
    case TypeKind::kRecord: {
      std::ostringstream os;
      os << "[&]{ const auto& fields = (" << value_expr
         << ").items(); return " << cpp_type_for(type) << "{";
      std::size_t i = 0;
      for (const uts::Field& f : type.fields()) {
        if (i) os << ", ";
        os << from_value_expr(*f.type, "fields[" + std::to_string(i) + "]");
        ++i;
      }
      os << "}; }()";
      return os.str();
    }
  }
  return "{}";
}

std::string stub_class_name(const ProcDecl& decl) {
  std::string n = sanitize_identifier(decl.name);
  n[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(n[0])));
  return n + "Stub";
}

/// Render a multi-line plan listing as /// comment lines.
std::string comment_block(const std::string& text) {
  std::ostringstream os;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) os << "///   " << line << "\n";
  return os.str();
}

std::string escape_string_literal(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

GeneratedStub generate_client_stub(const ProcDecl& decl) {
  GeneratedStub stub;
  const std::string cls = stub_class_name(decl);
  const std::string import_text =
      uts::decl_to_string(ProcDecl{DeclKind::kImport, decl.name,
                                   decl.signature});

  std::ostringstream h;
  h << "/// Client stub for '" << decl.name << "' — generated by\n"
    << "/// schooner-stubgen from:\n///   "
    << uts::signature_to_string(decl.signature) << "\n";
  // Bake the compiled marshal plan into the stub's documentation so a
  // reader sees the exact wire program the call executes.
  h << "/// Request plan:\n"
    << comment_block(
           uts::compile_plan(decl.signature, uts::Direction::kRequest)
               ->describe())
    << "/// Reply plan:\n"
    << comment_block(
           uts::compile_plan(decl.signature, uts::Direction::kReply)
               ->describe());
  h << "class " << cls << " {\n public:\n";
  h << "  explicit " << cls << "(npss::rpc::SchoonerClient& client)\n"
    << "      : proc_(client.import_proc(\"" << decl.name << "\",\n"
    << "            \"" << escape_string_literal(import_text) << "\")) {}\n\n";

  // Result struct: one member per out-travelling parameter.
  h << "  struct Result {\n";
  for (const Param& p : decl.signature) {
    if (travels_out(p)) {
      h << "    " << cpp_type_for(p.type) << " " << sanitize_identifier(p.name)
        << ";\n";
    }
  }
  h << "  };\n\n";

  // call() takes the in-travelling parameters.
  h << "  Result call(";
  bool first = true;
  for (const Param& p : decl.signature) {
    if (!travels_in(p)) continue;
    if (!first) h << ", ";
    first = false;
    h << "const " << cpp_type_for(p.type) << "& "
      << sanitize_identifier(p.name);
  }
  h << ") {\n";
  h << "    uts::ValueList args;\n";
  for (const Param& p : decl.signature) {
    if (travels_in(p)) {
      h << "    args.push_back("
        << to_value_expr(p.type, sanitize_identifier(p.name)) << ");\n";
    } else {
      h << "    args.push_back(uts::default_value(proc_->signature()["
        << (&p - decl.signature.data()) << "].type));\n";
    }
  }
  h << "    npss::rpc::CallResult reply =\n"
       "        proc_->call(std::move(args), proc_->call_options());\n";
  h << "    uts::ValueList& out = reply.values_or_raise();\n";
  h << "    Result result{};\n";
  std::size_t idx = 0;
  for (const Param& p : decl.signature) {
    if (travels_out(p)) {
      h << "    result." << sanitize_identifier(p.name) << " = "
        << from_value_expr(p.type, "out[" + std::to_string(idx) + "]")
        << ";\n";
    }
    ++idx;
  }
  h << "    return result;\n  }\n\n";
  h << "  npss::rpc::RemoteProc& proc() { return *proc_; }\n\n";
  h << "  /// The compiled marshal plans the stub's calls execute.\n";
  h << "  const uts::MarshalPlan& request_plan() const { "
       "return proc_->request_plan(); }\n";
  h << "  const uts::MarshalPlan& reply_plan() const { "
       "return proc_->reply_plan(); }\n\n";
  h << " private:\n  std::unique_ptr<npss::rpc::RemoteProc> proc_;\n};\n";
  stub.header = h.str();
  return stub;
}

GeneratedStub generate_server_stub(const ProcDecl& decl) {
  GeneratedStub stub;
  const std::string fn = sanitize_identifier(decl.name);
  std::ostringstream h;
  h << "/// Server dispatch for '" << decl.name << "' — generated by\n"
    << "/// schooner-stubgen. Bind `impl` with the typed signature:\n///   (";
  bool first = true;
  for (const Param& p : decl.signature) {
    if (!first) h << ", ";
    first = false;
    h << cpp_type_for(p.type) << (travels_out(p) ? "&" : "") << " "
      << sanitize_identifier(p.name);
  }
  h << ")\n";
  h << "template <typename Fn>\n";
  h << "npss::rpc::ProcedureDef make_" << fn << "_def(Fn&& impl) {\n";
  h << "  return npss::rpc::ProcedureDef{\"" << decl.name
    << "\", [impl](npss::rpc::ProcCall& call) {\n";
  for (const Param& p : decl.signature) {
    const std::string var = sanitize_identifier(p.name);
    h << "    " << cpp_type_for(p.type) << " " << var << " = "
      << from_value_expr(p.type, "call.arg(\"" + p.name + "\")") << ";\n";
  }
  h << "    impl(";
  first = true;
  for (const Param& p : decl.signature) {
    if (!first) h << ", ";
    first = false;
    h << sanitize_identifier(p.name);
  }
  h << ");\n";
  for (const Param& p : decl.signature) {
    if (travels_out(p)) {
      h << "    call.set(\"" << p.name << "\", "
        << to_value_expr(p.type, sanitize_identifier(p.name)) << ");\n";
    }
  }
  h << "  }};\n}\n";
  stub.header = h.str();
  return stub;
}

GeneratedStub generate_all(const uts::SpecFile& spec,
                           const std::string& header_name,
                           const std::string& spec_sha256) {
  std::ostringstream h;
  h << "// Generated by schooner-stubgen — do not edit.\n";
  h << "#pragma once\n\n";
  h << "#include <array>\n#include <cstdint>\n#include <memory>\n"
    << "#include <string>\n#include <tuple>\n\n";
  h << "#include \"rpc/client.hpp\"\n#include \"rpc/host.hpp\"\n\n";
  h << "namespace uts = npss::uts;\n\n";
  h << "// header: " << header_name << "\n\n";
  if (!spec_sha256.empty()) {
    h << "/// Content hash of the spec these stubs were generated from;\n"
      << "/// compare against the `files[].sha256` entries of a\n"
      << "/// `uts_check --json` manifest to detect a stale build.\n"
      << "inline constexpr char kSpecSha256[] = \"" << spec_sha256
      << "\";\n\n";
  }
  for (const ProcDecl& decl : spec.decls) {
    if (decl.kind == DeclKind::kImport) {
      h << generate_client_stub(decl).header << "\n";
    } else {
      h << generate_server_stub(decl).header << "\n";
    }
  }
  GeneratedStub out;
  out.header = h.str();
  return out;
}

}  // namespace npss::stubgen
