// schooner-stubgen — the stub compiler CLI.
//
//   schooner-stubgen <spec-file> [-o <header-out>]
//
// Reads a UTS specification file and writes a C++ header with client stubs
// for each import declaration and server dispatch skeletons for each
// export declaration. With no -o, the header goes to stdout.
//
// Every spec is run through the uts-check lint first; stubs are only
// generated from specs with no UTS0xx errors (diagnostics go to stderr),
// so a bad spec fails the build here instead of a call failing at runtime.
#include <fstream>
#include <iostream>
#include <sstream>

#include "check/check.hpp"
#include "stubgen/stubgen.hpp"

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: schooner-stubgen <spec-file> [-o <header-out>]\n";
      return 0;
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      std::cerr << "schooner-stubgen: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (spec_path.empty()) {
    std::cerr << "schooner-stubgen: no specification file given\n";
    return 2;
  }
  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "schooner-stubgen: cannot open '" << spec_path << "'\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  try {
    npss::check::FileReport report =
        npss::check::lint_spec_text(spec_path, text.str());
    std::cerr << npss::check::render_human(report.diags);
    if (npss::check::has_errors(report.diags)) {
      std::cerr << "schooner-stubgen: '" << spec_path
                << "' failed the uts-check lint; no stubs generated\n";
      return 1;
    }
    npss::stubgen::GeneratedStub out =
        npss::stubgen::generate_all(report.spec, spec_path, report.sha256);
    if (out_path.empty()) {
      std::cout << out.header;
    } else {
      std::ofstream of(out_path);
      of << out.header;
      if (!of) {
        std::cerr << "schooner-stubgen: cannot write '" << out_path << "'\n";
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "schooner-stubgen: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
