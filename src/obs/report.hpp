// Run reports: one call renders everything the observability layer
// collected for a run — per-layer metrics from the Registry grouped by
// subsystem, plus the SpanCollector's RPC call trees with per-hop
// timings. The one-call replacement for the paper's hand-built Tables 1
// and 2.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace npss::obs {

/// Render a report over explicit sources (tests use private instances).
std::string render_run_report(const Registry& registry,
                              const SpanCollector& spans,
                              std::size_t max_traces = 4);

/// Report over the global registry and collector.
std::string run_report(std::size_t max_traces = 4);

/// Instrumented layers (dotted-name prefixes, e.g. "rpc.client") that
/// recorded at least one non-empty metric — what a run actually touched.
std::vector<std::string> active_layers(const Registry& registry);

/// Clear the global registry values and collected spans; the next run
/// starts its report from zero.
void reset_run();

}  // namespace npss::obs
