#include "obs/report.hpp"

#include <algorithm>
#include <sstream>

namespace npss::obs {

namespace {

/// "rpc.client.calls.shaft" -> "rpc.client" (first two dotted segments).
std::string layer_of(const std::string& name) {
  std::size_t first = name.find('.');
  if (first == std::string::npos) return name;
  std::size_t second = name.find('.', first + 1);
  if (second == std::string::npos) return name;
  return name.substr(0, second);
}

}  // namespace

std::vector<std::string> active_layers(const Registry& registry) {
  std::vector<std::string> layers;
  for (const std::string& name : registry.active_names()) {
    std::string layer = layer_of(name);
    if (std::find(layers.begin(), layers.end(), layer) == layers.end()) {
      layers.push_back(layer);
    }
  }
  std::sort(layers.begin(), layers.end());
  return layers;
}

std::string render_run_report(const Registry& registry,
                              const SpanCollector& spans,
                              std::size_t max_traces) {
  std::ostringstream os;
  os << "=== run report ===\n";

  std::vector<std::string> layers = active_layers(registry);
  os << "instrumented layers (" << layers.size() << "):";
  for (const std::string& layer : layers) os << " " << layer;
  os << "\n\n-- metrics --\n" << registry.to_text();

  os << "\n-- call trees (first " << max_traces << " traces of "
     << spans.size() << " spans";
  if (spans.dropped() > 0) os << ", " << spans.dropped() << " dropped";
  os << ") --\n" << spans.render_tree(max_traces);
  return os.str();
}

std::string run_report(std::size_t max_traces) {
  return render_run_report(Registry::global(), SpanCollector::global(),
                           max_traces);
}

void reset_run() {
  Registry::global().reset();
  SpanCollector::global().clear();
}

}  // namespace npss::obs
