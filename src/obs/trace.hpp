// Trace contexts and spans — the structural half of the observability
// layer, a software reproduction of the paper's Tables 1 and 2: where the
// authors timed individual Schooner RPC calls between machine pairs by
// hand, a span is opened around each call, its context rides the kCall /
// kReply wire frames, and the callee opens a child span under the same
// trace id. The in-process SpanCollector then renders the call tree with
// per-hop timings for any run.
//
// Ids are process-local monotonic counters: cheap, deterministic, and
// unique within a run, which is all the in-process collector needs.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace npss::obs {

/// The context carried on the wire: which trace a call belongs to and
/// which span is its immediate caller. trace_id 0 means "not traced"
/// (e.g. a frame from a pre-trace peer).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  bool active() const noexcept { return trace_id != 0; }
};

/// The thread's current context (the innermost live Span), or an inactive
/// context when no span is open.
TraceContext current_trace() noexcept;

/// One finished span as the collector keeps it.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::string layer;  ///< instrumented layer, e.g. "rpc.client"
  std::string name;   ///< operation, e.g. "call shaft"
  /// Schooner line the operation ran under, or -1 (rpc::kNoLine) when the
  /// span is not line-scoped. Lets a multi-tenant run's traces be sliced
  /// per line (DESIGN.md §15).
  std::int64_t line = -1;
  double start_us = 0.0;     ///< since process start (steady clock)
  double duration_us = 0.0;
};

/// Thread-safe sink for finished spans. Bounded: past `capacity()` spans
/// new records are dropped (dropped() counts them) so a long transient
/// cannot eat the heap; histograms in the Registry keep the aggregate
/// view regardless.
class SpanCollector {
 public:
  static SpanCollector& global();

  explicit SpanCollector(std::size_t capacity = 65536);

  void record(SpanRecord rec);
  std::vector<SpanRecord> snapshot() const;
  /// All spans of one trace, parents before children where possible.
  std::vector<SpanRecord> trace(std::uint64_t trace_id) const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const;
  void clear();

  /// Render every collected trace as an indented call tree with per-hop
  /// timings — the run report's Tables 1/2 analogue. `max_traces` caps
  /// output for long runs (0 = all).
  std::string render_tree(std::size_t max_traces = 8) const;

 private:
  // Leaf lock (lock_hierarchy.md): record/snapshot hold it briefly and
  // never take another lock under it.
  mutable util::Mutex mu_{"obs.SpanCollector"};
  std::size_t capacity_;
  std::vector<SpanRecord> spans_ SCHOONER_GUARDED_BY(mu_);
  std::uint64_t dropped_ SCHOONER_GUARDED_BY(mu_) = 0;
};

/// RAII span. Opening a span makes it the thread's current context;
/// closing restores the previous one and hands the record to the global
/// SpanCollector. When obs::enabled() is false construction is a no-op.
class Span {
 public:
  /// Open a span under the thread's current context (a fresh trace root
  /// when there is none).
  Span(std::string layer, std::string name);

  /// Open a span continuing a context received from a peer (the callee
  /// side of an RPC): same trace id, parent = the caller's span.
  Span(std::string layer, std::string name, const TraceContext& remote);

  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// The context to put on outgoing wire frames while this span is open.
  const TraceContext& context() const noexcept { return ctx_; }

  /// Microseconds since the span opened (live reading).
  double elapsed_us() const noexcept;

  bool active() const noexcept { return active_; }

  /// Tag the span with the Schooner line it serves; recorded into
  /// SpanRecord::line when the span closes. No-op on an inactive span.
  void set_line(std::int64_t line) noexcept {
    if (active_) line_ = line;
  }

 private:
  void open(std::string layer, std::string name, TraceContext ctx);

  TraceContext ctx_;
  TraceContext prev_;
  std::string layer_, name_;
  std::int64_t line_ = -1;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
};

/// Fresh ids (exposed for tests and for callers that need an id without a
/// Span, e.g. pre-assigning a trace to a whole engine run).
std::uint64_t next_trace_id() noexcept;
std::uint64_t next_span_id() noexcept;

}  // namespace npss::obs
