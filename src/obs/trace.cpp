#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <sstream>

#include "obs/metrics.hpp"

namespace npss::obs {

namespace {

std::atomic<std::uint64_t> g_next_trace{1};
std::atomic<std::uint64_t> g_next_span{1};

thread_local TraceContext t_current;

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

double us_since_epoch(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::micro>(t - process_epoch())
      .count();
}

}  // namespace

std::uint64_t next_trace_id() noexcept {
  return g_next_trace.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t next_span_id() noexcept {
  return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

TraceContext current_trace() noexcept { return t_current; }

// --- SpanCollector ------------------------------------------------------------

SpanCollector& SpanCollector::global() {
  static SpanCollector* collector = new SpanCollector();
  return *collector;
}

SpanCollector::SpanCollector(std::size_t capacity) : capacity_(capacity) {}

void SpanCollector::record(SpanRecord rec) {
  util::MutexLock lock(mu_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(rec));
}

std::vector<SpanRecord> SpanCollector::snapshot() const {
  util::MutexLock lock(mu_);
  return spans_;
}

std::vector<SpanRecord> SpanCollector::trace(std::uint64_t trace_id) const {
  util::MutexLock lock(mu_);
  std::vector<SpanRecord> out;
  for (const SpanRecord& s : spans_) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

std::size_t SpanCollector::size() const {
  util::MutexLock lock(mu_);
  return spans_.size();
}

std::uint64_t SpanCollector::dropped() const {
  util::MutexLock lock(mu_);
  return dropped_;
}

void SpanCollector::clear() {
  util::MutexLock lock(mu_);
  spans_.clear();
  dropped_ = 0;
}

namespace {

void render_span(std::ostringstream& os,
                 const std::map<std::uint64_t, std::vector<const SpanRecord*>>&
                     children,
                 const SpanRecord& span, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << span.layer << " " << span.name;
  if (span.line >= 0) os << " (line " << span.line << ")";
  os << "  [" << span.duration_us << " us]\n";
  auto it = children.find(span.span_id);
  if (it == children.end()) return;
  for (const SpanRecord* child : it->second) {
    render_span(os, children, *child, depth + 1);
  }
}

}  // namespace

std::string SpanCollector::render_tree(std::size_t max_traces) const {
  std::vector<SpanRecord> spans = snapshot();
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.start_us < b.start_us;
            });

  std::ostringstream os;
  std::size_t traces_rendered = 0;
  std::size_t i = 0;
  while (i < spans.size()) {
    const std::uint64_t trace_id = spans[i].trace_id;
    std::size_t end = i;
    while (end < spans.size() && spans[end].trace_id == trace_id) ++end;
    if (max_traces != 0 && traces_rendered >= max_traces) break;
    ++traces_rendered;

    // Index children; spans whose parent is absent (e.g. the parent was
    // dropped, or the root) render at top level.
    std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
    std::map<std::uint64_t, const SpanRecord*> by_id;
    for (std::size_t j = i; j < end; ++j) by_id[spans[j].span_id] = &spans[j];
    std::vector<const SpanRecord*> roots;
    for (std::size_t j = i; j < end; ++j) {
      const SpanRecord& s = spans[j];
      if (s.parent_span_id != 0 && by_id.contains(s.parent_span_id)) {
        children[s.parent_span_id].push_back(&s);
      } else {
        roots.push_back(&s);
      }
    }
    os << "trace " << trace_id << ":\n";
    for (const SpanRecord* root : roots) {
      render_span(os, children, *root, 1);
    }
    i = end;
  }
  if (max_traces != 0 && traces_rendered == max_traces) {
    os << "(further traces elided)\n";
  }
  return os.str();
}

// --- Span ---------------------------------------------------------------------

void Span::open(std::string layer, std::string name, TraceContext ctx) {
  ctx_ = ctx;
  layer_ = std::move(layer);
  name_ = std::move(name);
  prev_ = t_current;
  t_current = ctx_;
  start_ = std::chrono::steady_clock::now();
  active_ = true;
}

Span::Span(std::string layer, std::string name) {
  if (!enabled()) return;
  TraceContext parent = t_current;
  TraceContext ctx;
  ctx.trace_id = parent.active() ? parent.trace_id : next_trace_id();
  ctx.parent_span_id = parent.active() ? parent.span_id : 0;
  ctx.span_id = next_span_id();
  open(std::move(layer), std::move(name), ctx);
}

Span::Span(std::string layer, std::string name, const TraceContext& remote) {
  if (!enabled()) return;
  TraceContext ctx;
  if (remote.active()) {
    ctx.trace_id = remote.trace_id;
    ctx.parent_span_id = remote.span_id;
  } else {
    ctx.trace_id = next_trace_id();
    ctx.parent_span_id = 0;
  }
  ctx.span_id = next_span_id();
  open(std::move(layer), std::move(name), ctx);
}

Span::~Span() {
  if (!active_) return;
  t_current = prev_;
  SpanRecord rec;
  rec.trace_id = ctx_.trace_id;
  rec.span_id = ctx_.span_id;
  rec.parent_span_id = ctx_.parent_span_id;
  rec.layer = std::move(layer_);
  rec.name = std::move(name_);
  rec.line = line_;
  rec.start_us = us_since_epoch(start_);
  rec.duration_us = elapsed_us();
  SpanCollector::global().record(std::move(rec));
}

double Span::elapsed_us() const noexcept {
  if (!active_) return 0.0;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

}  // namespace npss::obs
