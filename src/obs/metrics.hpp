// Metrics registry — the quantitative half of the observability layer.
//
// The paper's experimental results (Tables 1 and 2) are hand-collected
// timings of individual Schooner RPC calls; §2.3 asks for "monitoring
// particular values from selected component codes". This registry is the
// built-in replacement for both: every layer of the stack (RPC client,
// procedure host, Manager, TCP transport, flow scheduler, engine solvers)
// records named counters, gauges, and fixed-bucket latency histograms
// here, and a run report renders them after any simulation run.
//
// Concurrency: metric objects are lock-free (atomics); the registry map
// itself takes a mutex only on first registration of a name. Handles
// returned by counter()/gauge()/histogram() stay valid for the registry's
// lifetime, so hot paths cache them.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace npss::obs {

/// Global kill switch for the instrumentation call sites. When disabled,
/// instrumented layers skip metric recording and span collection; the
/// bench_obs_overhead harness measures the difference.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

namespace detail {
/// fetch_add for doubles via CAS (portable across libstdc++ versions).
void atomic_add(std::atomic<double>& target, double delta) noexcept;
void atomic_min(std::atomic<double>& target, double value) noexcept;
void atomic_max(std::atomic<double>& target, double value) noexcept;
}  // namespace detail

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value. add()/sub() make it usable as a
/// level gauge too (e.g. rpc.line.active counts currently-open lines).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept { detail::atomic_add(value_, delta); }
  void sub(double delta) noexcept { detail::atomic_add(value_, -delta); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts samples with
/// value <= upper_bounds[i] (first matching bucket); samples above the
/// last bound land in a dedicated overflow bucket. Also tracks count,
/// sum, min, and max so reports can show mean and range.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept;
  double min() const noexcept;  ///< 0 when empty
  double max() const noexcept;  ///< 0 when empty

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Count in bucket `i` (0 <= i < bounds().size()).
  std::uint64_t bucket_count(std::size_t i) const;
  /// Samples above the last bound.
  std::uint64_t overflow() const noexcept;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  /// bounds_.size() buckets plus one overflow slot.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Default bucket edges for microsecond latencies: 1 us .. 10 s in a
/// 1-2-5 progression (covers loopback through the 1993 Internet WAN).
const std::vector<double>& default_latency_us_bounds();

/// Default bucket edges for iteration counts: 1 .. 10000.
const std::vector<double>& default_iteration_bounds();

class Registry {
 public:
  /// The process-wide registry the instrumented layers record into.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Throws util::ModelError if `name` already names a
  /// metric of a different kind. For histogram(), `upper_bounds` applies
  /// only on first registration.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds =
                           default_latency_us_bounds());

  /// Registered names, sorted (all kinds interleaved).
  std::vector<std::string> names() const;
  /// Names whose metric recorded anything: counter > 0, gauge != 0, or
  /// histogram count > 0.
  std::vector<std::string> active_names() const;
  bool has(const std::string& name) const;

  /// Read helpers for tests/reports; throw util::ModelError on a missing
  /// name or kind mismatch.
  const Counter& find_counter(const std::string& name) const;
  const Gauge& find_gauge(const std::string& name) const;
  const Histogram& find_histogram(const std::string& name) const;

  /// Plain-text export, one metric per line, sorted by name.
  std::string to_text() const;
  /// JSON export: {"counters": {...}, "gauges": {...}, "histograms": ...}.
  std::string to_json() const;

  /// Zero every metric, keeping registrations (handles stay valid).
  void reset();

 private:
  struct Entry {
    // Exactly one of these is set; which one defines the metric's kind.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  // Leaf lock (lock_hierarchy.md): registration and export serialize on
  // it, but nothing else is ever acquired under it. Hot-path recording
  // goes through the returned handles, which are lock-free atomics.
  mutable util::Mutex mu_{"obs.Registry"};
  std::map<std::string, Entry> entries_ SCHOONER_GUARDED_BY(mu_);
};

}  // namespace npss::obs
