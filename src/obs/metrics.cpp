#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/status.hpp"

namespace npss::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (value < cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

// --- Histogram ----------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw util::ModelError("histogram needs at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw util::ModelError("histogram bucket bounds must be sorted");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::record(double value) noexcept {
  // First bucket whose upper bound contains the value; past-the-end is
  // the overflow slot.
  std::size_t i =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                                value) -
                               bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
  detail::atomic_min(min_, value);
  detail::atomic_max(max_, value);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  if (i >= bounds_.size()) {
    throw util::ModelError("histogram bucket index out of range");
  }
  return buckets_[i].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::overflow() const noexcept {
  return buckets_[bounds_.size()].load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

const std::vector<double>& default_latency_us_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(decade * 2.0);
      b.push_back(decade * 5.0);
    }
    b.push_back(1e7);  // 10 s
    return b;
  }();
  return bounds;
}

const std::vector<double>& default_iteration_bounds() {
  static const std::vector<double> bounds = {1,   2,   3,    5,    8,   13,
                                             21,  34,  55,   89,   144, 233,
                                             500, 1000, 2000, 5000, 10000};
  return bounds;
}

// --- Registry -----------------------------------------------------------------

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed: handles
                                               // outlive static teardown
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  util::MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge || e.histogram) {
    throw util::ModelError("metric '" + name + "' is not a counter");
  }
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  util::MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.counter || e.histogram) {
    throw util::ModelError("metric '" + name + "' is not a gauge");
  }
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& upper_bounds) {
  util::MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (e.counter || e.gauge) {
    throw util::ModelError("metric '" + name + "' is not a histogram");
  }
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(upper_bounds);
  return *e.histogram;
}

std::vector<std::string> Registry::names() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::vector<std::string> Registry::active_names() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, e] : entries_) {
    const bool active = (e.counter && e.counter->value() > 0) ||
                        (e.gauge && e.gauge->value() != 0.0) ||
                        (e.histogram && e.histogram->count() > 0);
    if (active) out.push_back(name);
  }
  return out;
}

bool Registry::has(const std::string& name) const {
  util::MutexLock lock(mu_);
  return entries_.contains(name);
}

const Counter& Registry::find_counter(const std::string& name) const {
  util::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || !it->second.counter) {
    throw util::ModelError("no counter named '" + name + "'");
  }
  return *it->second.counter;
}

const Gauge& Registry::find_gauge(const std::string& name) const {
  util::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || !it->second.gauge) {
    throw util::ModelError("no gauge named '" + name + "'");
  }
  return *it->second.gauge;
}

const Histogram& Registry::find_histogram(const std::string& name) const {
  util::MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() || !it->second.histogram) {
    throw util::ModelError("no histogram named '" + name + "'");
  }
  return *it->second.histogram;
}

namespace {

void format_double(std::ostringstream& os, double v) {
  // Trim trailing zeros so counters-of-bytes read naturally.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os.precision(6);
    os << v;
  }
}

}  // namespace

std::string Registry::to_text() const {
  util::MutexLock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, e] : entries_) {
    if (e.counter) {
      os << name << " counter " << e.counter->value() << "\n";
    } else if (e.gauge) {
      os << name << " gauge ";
      format_double(os, e.gauge->value());
      os << "\n";
    } else if (e.histogram) {
      const Histogram& h = *e.histogram;
      os << name << " histogram count=" << h.count() << " mean=";
      format_double(os, h.mean());
      os << " min=";
      format_double(os, h.min());
      os << " max=";
      format_double(os, h.max());
      if (h.overflow() > 0) os << " overflow=" << h.overflow();
      os << "\n";
    }
  }
  return os.str();
}

std::string Registry::to_json() const {
  util::MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!e.counter) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << e.counter->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, e] : entries_) {
    if (!e.gauge) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":";
    format_double(os, e.gauge->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, e] : entries_) {
    if (!e.histogram) continue;
    if (!first) os << ",";
    first = false;
    const Histogram& h = *e.histogram;
    os << "\"" << name << "\":{\"count\":" << h.count() << ",\"sum\":";
    format_double(os, h.sum());
    os << ",\"min\":";
    format_double(os, h.min());
    os << ",\"max\":";
    format_double(os, h.max());
    os << ",\"overflow\":" << h.overflow() << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i) os << ",";
      os << "[";
      format_double(os, h.bounds()[i]);
      os << "," << h.bucket_count(i) << "]";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

void Registry::reset() {
  util::MutexLock lock(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

}  // namespace npss::obs
