// migration_demo — moving a running computation between machines (§4.2).
//
// A long engine transient runs with the shaft computations remote on the
// RS/6000. Partway through, the RS/6000 "approaches a scheduled downtime",
// so the shaft processes are moved to the Convex with sch_move. The stubs'
// cached bindings go stale; their next call fails over to the Manager and
// retries transparently, and the transient finishes with the same physics
// as an undisturbed local run.
//
//   $ ./migration_demo
#include <cstdio>

#include "npss/procedures.hpp"
#include "npss/remote_backend.hpp"
#include "tess/engine.hpp"

using namespace npss;
using glue::AdaptedComponent;
using glue::RemoteBackend;

int main() {
  sim::Cluster cluster;
  cluster.add_machine("workstation", "sun-sparc10", "lerc");
  cluster.add_machine("rs6000", "ibm-rs6000", "lerc");
  cluster.add_machine("convex", "convex-c220", "lerc");
  glue::install_tess_procedures_everywhere(cluster);
  rpc::SchoonerSystem schooner(cluster, "workstation");

  RemoteBackend backend(schooner, "workstation");
  // Every placed stub carries a deadline/retry policy: 5 s of virtual
  // time across 3 attempts. The shaft derivative is pure, so a timed-out
  // attempt is safely retried.
  rpc::CallOptions call_opts;
  call_opts.deadline_us = 5'000'000;
  call_opts.max_attempts = 3;
  call_opts.idempotent = true;
  backend.set_call_options(call_opts);
  backend.place(AdaptedComponent::kShaft, 0, {"rs6000", ""});
  backend.place(AdaptedComponent::kShaft, 1, {"rs6000", ""});

  tess::F100Engine engine;
  engine.set_hooks(backend.hooks());
  engine.set_solver_tolerances(5e-6, 1e-4);
  tess::FlightCondition sls;
  tess::SteadyResult steady = engine.balance(1.0, sls);
  std::printf("balanced with both shaft procedures on the RS/6000: "
              "N1=%.0f N2=%.0f rpm\n",
              steady.performance.speeds[0], steady.performance.speeds[1]);

  tess::FuelSchedule throttle = [](double) { return 1.27; };

  // First second of the transient on the RS/6000...
  tess::TransientResult first = engine.transient(
      steady.performance.speeds, throttle, sls, 1.0, 0.02,
      solvers::IntegratorKind::kModifiedEuler);
  std::printf("t=1.0 s: N1=%.1f N2=%.1f (shaft calls so far: %d)\n",
              first.history.back().performance.speeds[0],
              first.history.back().performance.speeds[1],
              backend.total_calls());

  // ...the RS/6000 is about to go down: move both shaft processes. The
  // shaft procedure is stateless (its spool-speed state lives with the
  // caller), so no state transfer is needed — the §4.2 case.
  std::printf("\nRS/6000 scheduled downtime -> sch_move both shaft "
              "processes to the Convex\n");
  std::string lp_new = backend.move(AdaptedComponent::kShaft, 0, "convex");
  std::string hp_new = backend.move(AdaptedComponent::kShaft, 1, "convex");
  std::printf("  lp shaft now at %s\n  hp shaft now at %s\n",
              lp_new.c_str(), hp_new.c_str());

  // Continue the transient; the first calls after the move hit stale
  // caches and re-bind through the Manager.
  tess::TransientResult second = engine.transient(
      first.history.back().performance.speeds, throttle, sls, 1.0, 0.02,
      solvers::IntegratorKind::kModifiedEuler);
  std::printf("t=2.0 s: N1=%.1f N2=%.1f\n",
              second.history.back().performance.speeds[0],
              second.history.back().performance.speeds[1]);

  // Reference: undisturbed local run.
  tess::F100Engine local;
  tess::SteadyResult lsteady = local.balance(1.0, sls);
  tess::TransientResult ltr = local.transient(
      lsteady.performance.speeds, throttle, sls, 2.0, 0.02,
      solvers::IntegratorKind::kModifiedEuler);
  const double dev =
      std::abs(second.history.back().performance.speeds[0] /
                   ltr.history.back().performance.speeds[0] -
               1.0);
  std::printf("\ndeviation from undisturbed local run after the move: "
              "%.2e (single-float wire precision)\n", dev);
  std::printf("stale-cache retries observed: %d (one per moved stub on "
              "its first post-move call)\n",
              backend.total_stale_retries());
  std::printf("failovers: %d, degraded calls: %d — a polite sch_move "
              "needs neither\n",
              backend.failovers(), backend.degraded_calls());
  return 0;
}
