// Quickstart — a minimal Schooner program (the Figure 1 structure).
//
// Builds a three-machine virtual cluster (a Sun workstation, a Cray Y-MP
// and an IBM RS/6000), boots the Schooner runtime (one Server per machine
// plus the persistent Manager), installs a couple of "executables", and
// runs a sequential computation whose procedures execute on different
// machines — including a nested call, so control passes workstation ->
// Cray -> RS/6000 and back, with every value crossing the UTS canonical
// form between unlike float formats.
//
//   $ ./quickstart
#include <cstdio>

#include "rpc/schooner.hpp"
#include "util/log.hpp"

using namespace npss;
using rpc::ProcCall;
using uts::Value;

namespace {

// UTS export specification for the Cray-resident procedure. Fortran on the
// Cray upper-cases external names; the Manager's case synonyms (§4.1 of
// the paper) mean we can keep writing lower case everywhere.
const char* kIntegrateSpec = R"(
  export integrate prog(
      "coeffs" val array[4] of double,
      "lo" val double,
      "hi" val double,
      "area" res double)
)";

// A helper hosted on the RS/6000 that the Cray procedure calls *within
// the same line* — the sequential cross-machine chain of Figure 1.
const char* kEvalSpec = R"(
  export evalpoly prog(
      "coeffs" val array[4] of double,
      "x" val double,
      "y" res double)
)";

}  // namespace

int main() {
  // 1. A virtual cluster: two sites joined by the (1993) Internet.
  sim::Cluster cluster;
  cluster.add_machine("workstation", "sun-sparc10", "uarizona");
  cluster.add_machine("cray", "cray-ymp", "lerc");
  cluster.add_machine("rs6000", "ibm-rs6000", "lerc");
  cluster.set_site_link("uarizona", "lerc",
                        sim::link_profile("internet-wan"));

  // 2. Install "executables". evalpoly evaluates a cubic; integrate
  //    integrates it by midpoint quadrature, calling evalpoly remotely
  //    for each sample — a deliberately chatty decomposition so the
  //    printed virtual time shows what WAN crossings cost.
  cluster.install_image(
      "rs6000", "/npss/bin/evalpoly",
      rpc::make_procedure_image(kEvalSpec, {{"evalpoly", [](ProcCall& call) {
                                   std::vector<double> c =
                                       call.reals("coeffs");
                                   const double x = call.real("x");
                                   call.set_real(
                                       "y", ((c[3] * x + c[2]) * x + c[1]) *
                                                    x +
                                                c[0]);
                                 }}}));
  cluster.install_image(
      "cray", "/npss/bin/integrate",
      rpc::make_procedure_image(
          kIntegrateSpec, {{"integrate", [](ProcCall& call) {
              const double lo = call.real("lo"), hi = call.real("hi");
              const int n = 16;
              const double h = (hi - lo) / n;
              double area = 0.0;
              for (int i = 0; i < n; ++i) {
                // Nested remote call in the same line (Figure 1).
                uts::ValueList out = call.call_remote(
                    "evalpoly",
                    "import evalpoly prog(\"coeffs\" val array[4] of double,"
                    " \"x\" val double, \"y\" res double)",
                    {call.arg("coeffs"), Value::real(lo + (i + 0.5) * h),
                     Value::real(0)});
                area += out[2].as_real() * h;
              }
              call.set_real("area", area);
            }}}));

  // 3. Boot Schooner: Servers on every machine, Manager on the
  //    workstation. A Session holds the Manager connection; each line (a
  //    sequential thread of control, §4.2) is a lightweight handle on it.
  rpc::SchoonerSystem schooner(cluster, "workstation");
  auto session = schooner.make_session("workstation");
  auto line = session->open_line(rpc::LineOptions{}.with_name("quickstart"));

  // 4. The §3.3 startup calls: contact the Manager, start the remote
  //    processes, import the procedure.
  line->contact_schx("cray", "/npss/bin/integrate");
  line->contact_schx("rs6000", "/npss/bin/evalpoly");
  auto integrate = line->import_proc(
      "integrate",
      "import integrate prog(\"coeffs\" val array[4] of double,"
      " \"lo\" val double, \"hi\" val double, \"area\" res double)");

  // 5. Call it: integral of 1 + 2x + 3x^2 + 4x^3 over [0,1] == 1+1+1+1.
  rpc::CallResult reply = integrate->call(
      {Value::real_array({1, 2, 3, 4}), Value::real(0.0), Value::real(1.0),
       Value::real(0)},
      rpc::CallOptions::legacy());
  uts::ValueList& out = reply.values_or_raise();
  std::printf("integral over [0,1] of 1 + 2x + 3x^2 + 4x^3 = %.6f "
              "(exact 4; midpoint-16 error expected ~1e-3)\n",
              out[3].as_real());

  const auto& clock = line->io().endpoint().clock();
  std::printf("simulated elapsed time: %.1f ms across %llu messages\n",
              util::sim_to_ms(clock.now()),
              static_cast<unsigned long long>(cluster.traffic().messages));
  std::printf("the single workstation->cray call fanned out into 16\n"
              "cray->rs6000 calls (same site), so the WAN was crossed only\n"
              "twice -- the coarse-grained decomposition Schooner favors.\n");

  line->quit();
  return 0;
}
