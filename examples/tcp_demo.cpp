// tcp_demo — Schooner marshaling between two real OS processes over real
// loopback TCP sockets.
//
// The virtual cluster reproduces the paper's 1993 testbed; this demo shows
// the same wire protocol and UTS marshaling stack doing actual distributed
// work today: the process forks, the child hosts the shaft procedure with
// a Cray "personality" (its values pass through 64-bit Cray words), and
// the parent calls it — across a genuine process boundary.
//
//   $ ./tcp_demo
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "rpc/tcp_transport.hpp"
#include "tess/components.hpp"

using namespace npss;
using uts::Value;

namespace {

const char* kShaftSpec = R"(
  export shaft prog(
      "ecom" val array[4] of float,
      "incom" val integer,
      "etur" val array[4] of float,
      "intur" val integer,
      "ecorr" val float,
      "xspool" val float,
      "xmyi" val float,
      "dxspl" res float)
)";

const char* kShaftImport = R"(
  import shaft prog(
      "ecom" val array[4] of float,
      "incom" val integer,
      "etur" val array[4] of float,
      "intur" val integer,
      "ecorr" val float,
      "xspool" val float,
      "xmyi" val float,
      "dxspl" res float)
)";

int child_main(int port_pipe) {
  rpc::TcpProcedureHost host(
      kShaftSpec,
      {{"shaft",
        [](rpc::ProcCall& call) {
          std::vector<double> ecom = call.reals("ecom");
          std::vector<double> etur = call.reals("etur");
          call.set_real(
              "dxspl",
              tess::shaft(ecom.data(),
                          static_cast<int>(call.integer("incom")),
                          etur.data(),
                          static_cast<int>(call.integer("intur")),
                          call.real("ecorr"), call.real("xspool"),
                          call.real("xmyi")));
        }}},
      "cray-ymp");
  const int port = host.port();
  if (write(port_pipe, &port, sizeof port) != sizeof port) return 1;
  close(port_pipe);
  // Serve until the parent is done (parent closes its connection, then
  // kills us via the pipe trick below: we just sleep-poll on ppid).
  while (getppid() != 1) usleep(50 * 1000);
  return 0;
}

}  // namespace

int main() {
  int pipefd[2];
  if (pipe(pipefd) != 0) return 1;
  pid_t child = fork();
  if (child < 0) return 1;
  if (child == 0) {
    close(pipefd[0]);
    return child_main(pipefd[1]);
  }
  close(pipefd[1]);
  int port = 0;
  if (read(pipefd[0], &port, sizeof port) != sizeof port) return 1;
  close(pipefd[0]);
  std::printf("child process %d hosts the shaft procedure (Cray "
              "personality) on 127.0.0.1:%d\n",
              child, port);

  rpc::TcpRemoteProc shaft("127.0.0.1", port, "shaft", kShaftImport,
                           "sun-sparc10");
  // On the real transport the fault-tolerant surface counts *wall-clock*
  // microseconds: a 2 s deadline over 3 attempts, each retry reconnecting
  // the socket. The shaft derivative is pure, so timeouts are retryable.
  rpc::CallOptions opts;
  opts.deadline_us = 2'000'000;
  opts.max_attempts = 3;
  opts.idempotent = true;
  const double ecom[4] = {10.0e6, 100.0, 1.0e5, 0.85};
  const double etur[4] = {10.8e6, 100.0, 1.08e5, 0.89};
  rpc::CallResult result = shaft.call(
      {Value::real_array({ecom[0], ecom[1], ecom[2], ecom[3]}),
       Value::integer(1),
       Value::real_array({etur[0], etur[1], etur[2], etur[3]}),
       Value::integer(1), Value::real(0.99), Value::real(10400.0),
       Value::real(40.0), Value::real(0)},
      opts);
  if (!result.ok()) {
    std::printf("call failed: %s\n", result.status.to_string().c_str());
    return 1;
  }
  std::printf("call completed in %d attempt(s) within the deadline\n",
              result.attempt_count());
  uts::ValueList out = std::move(result.values);
  const double local = tess::shaft(ecom, 1, etur, 1, 0.99, 10400.0, 40.0);
  std::printf("dxspl over the wire: %.6f rpm/s (local: %.6f, rel dev "
              "%.2e — the UTS float wire)\n",
              out[7].as_real(), local,
              std::abs(out[7].as_real() / local - 1.0));

  // The timing loop makes one attempt per call with no deadline — the
  // historical contract — so the per-call figure stays comparable across
  // versions.
  rpc::CallOptions once = rpc::CallOptions::legacy();
  once.max_attempts = 1;
  const int reps = 1000;
  util::Stopwatch watch;
  for (int i = 0; i < reps; ++i) {
    shaft
        .call({Value::real_array({ecom[0], ecom[1], ecom[2], ecom[3]}),
               Value::integer(1),
               Value::real_array({etur[0], etur[1], etur[2], etur[3]}),
               Value::integer(1), Value::real(0.99), Value::real(10400.0),
               Value::real(40.0), Value::real(0)},
              once)
        .values_or_raise();
  }
  std::printf("%d cross-process calls: %.1f us each over loopback TCP\n",
              reps, watch.elapsed_ms() * 1000.0 / reps);

  // Same calls, pipelined: issue the whole batch with call_async before
  // reading any reply. All of them ride the one pooled connection as
  // sequence-tagged in-flight frames, so the per-call cost drops from a
  // full round trip to a share of the coalesced writes.
  std::vector<rpc::PendingTcpCall> pending;
  pending.reserve(reps);
  util::Stopwatch pipelined_watch;
  for (int i = 0; i < reps; ++i) {
    pending.push_back(shaft.call_async(
        {Value::real_array({ecom[0], ecom[1], ecom[2], ecom[3]}),
         Value::integer(1),
         Value::real_array({etur[0], etur[1], etur[2], etur[3]}),
         Value::integer(1), Value::real(0.99), Value::real(10400.0),
         Value::real(40.0), Value::real(0)}));
  }
  for (rpc::PendingTcpCall& call : pending) {
    if (!call.get().ok()) {
      std::printf("pipelined call failed: %s\n",
                  call.get().status.to_string().c_str());
      return 1;
    }
  }
  std::printf("%d pipelined calls: %.1f us each amortized (one connection, "
              "seq-matched replies)\n",
              reps, pipelined_watch.elapsed_ms() * 1000.0 / reps);

  kill(child, SIGTERM);
  waitpid(child, nullptr, 0);
  std::printf("child reaped; demo complete\n");
  return 0;
}
