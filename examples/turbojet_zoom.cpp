// turbojet_zoom — substituting component codes at different fidelity
// (the §2.3 "zooming" goal and §2.4 "modify the engine model by
// substituting different codes for one or more engine components").
//
// Starts from the single-spool turbojet network equivalent (built directly
// from TESS modules), then swaps the combustor for a *level-2* model — a
// user-defined module whose combustion efficiency degrades with loading —
// without touching any other module. The executive re-balances and the two
// fidelity levels are compared across the throttle range.
//
//   $ ./turbojet_zoom
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "flow/network.hpp"
#include "npss/modules.hpp"
#include "tess/engine.hpp"

using namespace npss;

namespace {

/// A "level 2" combustor: efficiency falls off with combustor loading
/// (fuel-air ratio relative to a design value), a first step beyond the
/// level-1 constant-efficiency model.
class Level2CombustorModule final : public flow::Module {
 public:
  std::string type_name() const override { return "tess-combustor-l2"; }

  void spec(flow::ModuleSpec& spec) override {
    spec.typein_real("wfuel", 0.8);
    spec.typein_real("eff-peak", 0.995);
    spec.typein_real("far-design", 0.02);
    spec.typein_real("dp", 0.05);
    spec.input("in", glue::station_type());
    spec.output("out", glue::station_type());
  }

  void compute() override {
    tess::GasState in_state = glue::station_from_value(in("in"));
    const double wf = widget("wfuel").real();
    const double far = wf / std::max(in_state.W, 1e-9);
    const double rel = far / widget("far-design").real();
    // Loading penalty: quadratic fall-off away from design loading.
    const double eff = std::clamp(
        widget("eff-peak").real() * (1.0 - 0.08 * (rel - 1.0) * (rel - 1.0)),
        0.5, 1.0);
    tess::CombustorResult r =
        tess::combustor(in_state, wf, eff, widget("dp").real());
    out("out", glue::station_to_value(r.out));
    last_eff_ = eff;
  }

  double last_efficiency() const { return last_eff_; }

 private:
  double last_eff_ = 0.0;
};

struct TurbojetNet {
  flow::Network net;

  void build(bool level2_combustor) {
    glue::register_tess_modules();
    net.add("system", "tess-system");
    net.add("inlet", "tess-inlet");
    net.add("shaft", "tess-shaft");
    net.add("compressor", "tess-compressor");
    if (level2_combustor) {
      net.add("burner", std::make_unique<Level2CombustorModule>());
    } else {
      net.add("burner", "tess-combustor");
    }
    net.add("turbine", "tess-turbine");
    net.add("tailpipe", "tess-duct");
    net.add("nozzle", "tess-nozzle");

    net.module("inlet").widget("W").set_real(77.0);
    flow::Module& comp = net.module("compressor");
    comp.widget("map").set_text("turbojet_compressor.map");
    comp.widget("design-speed").set_real(7500.0);
    comp.widget("shaft").set_text("shaft");
    flow::Module& turb = net.module("turbine");
    turb.widget("map").set_text("turbojet_turbine.map");
    turb.widget("design-speed").set_real(7500.0);
    turb.widget("shaft").set_text("shaft");
    turb.widget("pr").set_real(4.4);
    net.module("tailpipe").widget("dp").set_real(0.02);
    net.module("nozzle").widget("area").set_real(0.212);
    flow::Module& shaft = net.module("shaft");
    shaft.widget("moment-inertia").set_real(110.0);
    shaft.widget("spool-speed").set_real(7500.0);
    shaft.widget("spool-speed-op").set_real(7500.0);

    net.connect("inlet", "out", "compressor", "in");
    net.connect("compressor", "out", "burner", "in");
    net.connect("burner", "out", "turbine", "in");
    net.connect("turbine", "out", "tailpipe", "in");
    net.connect("tailpipe", "out", "nozzle", "in");
    net.connect("compressor", "ecom", "shaft", "ecom");
    net.connect("turbine", "etur", "shaft", "etur");
  }

  /// Single-spool balance: solve (W, turbine PR, N) so that turbine flow,
  /// nozzle flow and shaft power all match.
  struct Point {
    double n, t4, thrust;
  };
  Point balance(double wf) {
    net.module("burner").widget("wfuel").set_real(wf);
    auto read = [&](const std::string& m, const std::string& p) {
      for (const auto& port : net.module(m).outputs()) {
        if (port.name == p && port.value) return port.value->as_real();
      }
      throw util::GraphError("no value " + m + "." + p);
    };
    auto* shaft = dynamic_cast<glue::ShaftModule*>(&net.module("shaft"));
    auto residual = [&](const std::vector<double>& u) {
      net.module("inlet").widget("W").set_real(
          std::clamp(u[0], 0.05, 3.0) * 77.0);
      net.module("turbine").widget("pr").set_real(
          std::clamp(u[1], 0.3, 2.5) * 4.4);
      shaft->set_speed(std::clamp(u[2], 0.3, 1.4) * 7500.0);
      net.evaluate();
      return std::vector<double>{read("turbine", "flow-error"),
                                 read("nozzle", "w-error"),
                                 read("shaft", "accel") / 1000.0};
    };
    solvers::NewtonOptions opt;
    opt.tolerance = 1e-8;
    opt.max_iterations = 80;
    solvers::NewtonResult nr =
        solvers::newton_solve(residual, {1.0, 1.0, 1.0}, opt);
    residual(nr.solution);
    Point pt;
    pt.n = shaft->speed();
    pt.thrust = read("nozzle", "thrust") - read("inlet", "ram-drag");
    pt.t4 = glue::station_from_value(
                *net.module("burner").outputs()[0].value)
                .Tt;
    return pt;
  }
};

}  // namespace

int main() {
  std::printf("turbojet with level-1 vs level-2 combustor (zooming)\n\n");
  std::printf("%8s | %9s %9s %11s | %9s %9s %11s %8s\n", "wf", "N(L1)",
              "T4(L1)", "thrust(L1)", "N(L2)", "T4(L2)", "thrust(L2)",
              "eff(L2)");
  for (int i = 0; i < 70; ++i) std::putchar('-');
  std::putchar('\n');

  TurbojetNet level1, level2;
  level1.build(false);
  level2.build(true);
  for (double wf : {0.55, 0.7, 0.85, 1.0, 1.15}) {
    TurbojetNet::Point p1 = level1.balance(wf);
    TurbojetNet::Point p2 = level2.balance(wf);
    auto* burner2 =
        dynamic_cast<Level2CombustorModule*>(&level2.net.module("burner"));
    std::printf("%8.2f | %9.0f %9.0f %11.1f | %9.0f %9.0f %11.1f %8.3f\n",
                wf, p1.n, p1.t4, p1.thrust / 1e3, p2.n, p2.t4,
                p2.thrust / 1e3, burner2->last_efficiency());
  }
  std::printf(
      "\nShape: the two fidelity levels agree near design loading and\n"
      "diverge at the ends of the throttle range, where the level-2\n"
      "efficiency fall-off matters — the interaction 'zooming' exists to\n"
      "expose. The substitution touched exactly one module.\n");
  return 0;
}
