// f100_engine — the Figure 2 reproduction.
//
// Builds the F100 engine as a network of TESS modules in the flow
// executive, places the four adapted modules on remote machines through
// their §3.3 widgets (machine radio buttons + pathname type-in), balances
// the engine, flies a throttle transient, then "flies" a climb profile by
// editing the inlet widgets between runs — the §2.4 executive use cases.
// Finally the network is saved to f100.net (the Network Editor's save).
//
//   $ ./f100_engine
#include <cstdio>
#include <fstream>

#include "obs/metrics.hpp"
#include "npss/network_driver.hpp"
#include "npss/procedures.hpp"
#include "npss/runtime.hpp"

using namespace npss;
using glue::F100NetworkNames;

int main() {
  // The two-site testbed of Tables 1 and 2.
  sim::Cluster cluster;
  cluster.add_machine("sparc-ua", "sun-sparc10", "uarizona");
  cluster.add_machine("sgi340-ua", "sgi-4d340", "uarizona");
  cluster.add_machine("cray-lerc", "cray-ymp", "lerc");
  cluster.add_machine("sgi420-lerc", "sgi-4d420", "lerc");
  cluster.add_machine("rs6000-lerc", "ibm-rs6000", "lerc");
  cluster.set_site_link("uarizona", "lerc",
                        sim::link_profile("internet-wan"));
  glue::install_tess_procedures_everywhere(cluster);
  rpc::SchoonerSystem schooner(cluster, "sparc-ua");
  glue::configure_npss_runtime(cluster, schooner, "sparc-ua");

  // Every adapted module's remote calls carry a deadline/retry policy
  // (component procedures are pure, so timed-out attempts are retryable).
  glue::NpssRuntime& rt = glue::npss_runtime();
  rt.call_options.deadline_us = 10'000'000;
  rt.call_options.max_attempts = 4;
  rt.call_options.idempotent = true;
  rt.call_options.host_grace_ms = 20;

  // Drag the modules into the workspace and wire the airflow (Figure 2).
  flow::Network net;
  F100NetworkNames names = glue::build_f100_network(net);
  std::printf("F100 network: %zu modules, %zu connections\n",
              net.module_names().size(), net.connections().size());

  // The Table 2 placement, via the §3.3 widgets.
  auto place = [&](const std::string& module, const std::string& machine) {
    net.module(module).widget("machine").select(machine);
    std::printf("  %-12s -> %s (path %s)\n", module.c_str(), machine.c_str(),
                net.module(module).widget("path").text().c_str());
  };
  std::printf("remote placement:\n");
  place(names.burner, "sgi340-ua");
  place(names.bypass_duct, "cray-lerc");
  place(names.tailpipe, "cray-lerc");
  place(names.nozzle, "sgi420-lerc");
  place(names.lp_shaft, "rs6000-lerc");
  place(names.hp_shaft, "rs6000-lerc");

  glue::NetworkEngineDriver driver(net);
  driver.set_tolerances(5e-6, 1e-4);

  // Balance the engine at part power, as TESS does before any transient.
  glue::NetworkSteadyResult steady = driver.balance(1.0);
  std::printf(
      "\nbalanced: N1=%.0f rpm  N2=%.0f rpm  T4=%.0f K  thrust=%.1f kN "
      "(%d Newton iterations)\n",
      steady.speeds[0], steady.speeds[1], steady.t4, steady.thrust / 1e3,
      steady.iterations);

  // The 1993 Internet between the sites now drops one frame in fifty —
  // set after balance() so the placement handshakes stay clean — and the
  // transient completes anyway on retries.
  cluster.set_fault_seed(42);
  sim::FaultSpec drops;
  drops.drop_rate = 0.02;
  cluster.set_link_faults("internet-wan", drops);

  // Throttle transient: advance fuel flow, watch the spools.
  std::printf("\n1.5 s throttle transient (Improved Euler):\n");
  std::printf("%8s %10s %10s %10s %12s\n", "t [s]", "N1 [rpm]", "N2 [rpm]",
              "T4 [K]", "thrust [kN]");
  tess::FuelSchedule throttle = [](double t) {
    return t < 0.1 ? 1.0 : 1.27;
  };
  auto history = driver.run_transient(throttle, 1.5, 0.05);
  for (std::size_t i = 0; i < history.size(); i += 6) {
    const auto& s = history[i];
    std::printf("%8.2f %10.1f %10.1f %10.1f %12.2f\n", s.t, s.speeds[0],
                s.speeds[1], s.t4, s.thrust / 1e3);
  }

  // "Fly" a climb profile by editing the operating-condition widgets.
  std::printf("\nclimb profile (steady points):\n");
  std::printf("%10s %6s %10s %12s %10s\n", "alt [m]", "Mach", "wf [kg/s]",
              "thrust [kN]", "T4 [K]");
  struct Leg {
    double alt, mach, wf;
  };
  for (const Leg& leg : {Leg{0, 0.0, 1.27}, Leg{3000, 0.5, 1.05},
                         Leg{7000, 0.75, 0.85}, Leg{11000, 0.85, 0.62}}) {
    flow::Module& inlet = net.module(names.inlet);
    inlet.widget("altitude").set_real(leg.alt);
    inlet.widget("mach").set_real(leg.mach);
    tess::FlightCondition fc{leg.alt, leg.mach, 0.0};
    net.module(names.nozzle).widget("pamb").set_real(fc.ambient_pressure());
    glue::NetworkSteadyResult pt = driver.balance(leg.wf);
    std::printf("%10.0f %6.2f %10.2f %12.2f %10.1f\n", leg.alt, leg.mach,
                leg.wf, pt.thrust / 1e3, pt.t4);
  }

  // Save the engine model, as the AVS Network Editor would.
  std::ofstream("f100.net") << net.save_to_text();
  std::printf("\nnetwork saved to f100.net (%zu modules); Manager stats: "
              "%llu lines, %llu processes started\n",
              net.module_names().size(),
              static_cast<unsigned long long>(schooner.stats().lines_created),
              static_cast<unsigned long long>(
                  schooner.stats().processes_started));

  std::printf("wan frames dropped by injection: %llu; calls recovered by "
              "retry: %llu\n",
              static_cast<unsigned long long>(cluster.fault_stats().dropped),
              static_cast<unsigned long long>(
                  obs::Registry::global()
                      .counter("rpc.client.recovered_calls")
                      .value()));

  net.clear();  // destroy() -> sch_i_quit on every adapted module
  glue::clear_npss_runtime();
  return 0;
}
