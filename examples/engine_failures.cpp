// engine_failures — §2.4: "test operation of the engine in the presence
// of failures".
//
// The F100 flies a steady cruise; at t=2 s a partial combustor flameout
// strikes (efficiency collapses to 60%), at t=5 s the crew recovers it.
// The whole run executes with the combustor computed remotely over the
// virtual network, showing that failure injection composes with
// distribution. Output is a CSV-ish trace of the event.
//
//   $ ./engine_failures
#include <cmath>
#include <cstdio>

#include "obs/metrics.hpp"
#include "npss/procedures.hpp"
#include "npss/remote_backend.hpp"
#include "tess/engine.hpp"
#include "tess/failures.hpp"

using namespace npss;

int main() {
  sim::Cluster cluster;
  cluster.add_machine("ws", "sun-sparc10", "lerc");
  cluster.add_machine("sgi", "sgi-4d480", "lerc");
  glue::install_tess_procedures(cluster, "sgi");
  rpc::SchoonerSystem schooner(cluster, "ws");

  glue::RemoteBackend backend(schooner, "ws");
  backend.place(glue::AdaptedComponent::kCombustor, 0, {"sgi", ""});

  // Physics failures (below) compose with *network* failures: for the
  // whole flight the lan drops one frame in fifty, and the combustor stub
  // rides it out with a deadline/retry policy (the combustor procedure is
  // pure, so timed-out attempts are safely retried).
  rpc::CallOptions call_opts;
  call_opts.deadline_us = 2'000'000;
  call_opts.max_attempts = 4;
  call_opts.idempotent = true;
  call_opts.host_grace_ms = 20;
  backend.set_call_options(call_opts);
  cluster.set_fault_seed(1993);
  sim::FaultSpec drops;
  drops.drop_rate = 0.02;
  cluster.set_link_faults("ethernet-lan", drops);

  tess::FailureInjector injector(backend.hooks());
  tess::F100Engine engine;
  engine.set_hooks(injector.hooks());
  engine.set_solver_tolerances(5e-6, 1e-4);
  tess::FlightCondition sls;

  tess::SteadyResult steady = engine.balance(1.0, sls);
  std::printf("healthy cruise: N1=%.0f N2=%.0f T4=%.0fK thrust=%.1fkN\n\n",
              steady.performance.speeds[0], steady.performance.speeds[1],
              steady.performance.t4, steady.performance.thrust / 1e3);

  std::printf("%6s %10s %10s %9s %12s %8s  %s\n", "t[s]", "N1[rpm]",
              "N2[rpm]", "T4[K]", "thrust[kN]", "eff", "event");
  tess::FuelSchedule fuel = [](double) { return 1.0; };
  std::vector<double> speeds = steady.performance.speeds;

  auto fly = [&](double from, double to, const char* event) {
    bool first = true;
    tess::TransientResult tr = engine.transient(
        speeds, fuel, sls, to - from, 0.02,
        solvers::IntegratorKind::kModifiedEuler);
    for (const auto& s : tr.history) {
      if (std::fmod(s.t + 1e-9, 0.5) < 0.02) {
        std::printf("%6.2f %10.1f %10.1f %9.1f %12.2f %8.2f  %s\n",
                    from + s.t, s.performance.speeds[0],
                    s.performance.speeds[1], s.performance.t4,
                    s.performance.thrust / 1e3,
                    injector.combustor_efficiency_factor(),
                    first ? event : "");
        first = false;
      }
    }
    speeds = tr.history.back().performance.speeds;
  };

  fly(0.0, 2.0, "cruise");
  injector.set_combustor_efficiency_factor(0.60);
  fly(2.0, 5.0, "<< partial flameout (combustion eff 60%)");
  injector.clear();
  fly(5.0, 10.0, "<< recovery (efficiency restored)");

  std::printf("\nremote combustor calls during the whole event: %d\n",
              backend.total_calls());
  std::printf("lan frames dropped by injection: %llu; calls recovered by "
              "retry: %llu\n",
              static_cast<unsigned long long>(cluster.fault_stats().dropped),
              static_cast<unsigned long long>(
                  obs::Registry::global()
                      .counter("rpc.client.recovered_calls")
                      .value()));
  std::printf("final state: N2=%.1f rpm (healthy steady was %.1f)\n",
              speeds[1], steady.performance.speeds[1]);
  return 0;
}
