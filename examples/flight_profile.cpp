// flight_profile — §2.4: "start" the engine and "fly" it through a flight
// profile, under closed-loop fuel control, with the four adapted
// components computing remotely across the two-site network — the full
// prototype-executive experience in one run.
//
//   $ ./flight_profile
#include <cmath>
#include <cstdio>

#include "npss/procedures.hpp"
#include "npss/remote_backend.hpp"
#include "tess/mission.hpp"

using namespace npss;
using tess::FlightCondition;
using tess::MissionLeg;

int main() {
  sim::Cluster cluster;
  cluster.add_machine("sparc-ua", "sun-sparc10", "uarizona");
  cluster.add_machine("cray-lerc", "cray-ymp", "lerc");
  cluster.add_machine("rs6000-lerc", "ibm-rs6000", "lerc");
  cluster.set_site_link("uarizona", "lerc",
                        sim::link_profile("internet-wan"));
  glue::install_tess_procedures_everywhere(cluster);
  rpc::SchoonerSystem schooner(cluster, "sparc-ua");

  glue::RemoteBackend backend(schooner, "sparc-ua");
  backend.place(glue::AdaptedComponent::kShaft, 0, {"rs6000-lerc", ""});
  backend.place(glue::AdaptedComponent::kShaft, 1, {"rs6000-lerc", ""});
  backend.place(glue::AdaptedComponent::kCombustor, 0, {"cray-lerc", ""});

  tess::F100Engine engine;
  engine.set_hooks(backend.hooks());
  engine.set_solver_tolerances(5e-6, 1e-4);
  FlightCondition sls;

  // "Start" the engine: balance at ground idle.
  tess::SteadyResult idle = engine.balance(0.45, sls);
  std::printf("ground idle: N1=%.0f N2=%.0f T4=%.0fK\n",
              idle.performance.speeds[0], idle.performance.speeds[1],
              idle.performance.t4);

  std::vector<MissionLeg> profile = {
      {"takeoff accel", 35.0, FlightCondition{0, 0.0, 0}, 14400.0},
      {"initial climb", 25.0, FlightCondition{2500, 0.45, 0}, 14200.0},
      {"climb", 25.0, FlightCondition{6000, 0.65, 0}, 14000.0},
      {"cruise", 30.0, FlightCondition{10000, 0.82, 0}, 13400.0},
      {"descent idle", 25.0, FlightCondition{6000, 0.6, 0}, 11800.0},
  };

  std::printf("\n%-15s %7s %7s %9s %9s %9s %11s %8s\n", "leg", "t[s]",
              "wf", "N1[rpm]", "N2[rpm]", "T4[K]", "thrust[kN]", "sm");
  tess::MissionResult r = tess::fly_mission(
      engine, profile, idle.performance.speeds, 0.45,
      tess::GovernorConfig{}, 0.05,
      solvers::IntegratorKind::kModifiedEuler);

  std::size_t last_leg = SIZE_MAX;
  int row = 0;
  for (const tess::MissionSample& s : r.history) {
    const bool leg_change = s.leg != last_leg;
    if (leg_change || ++row % 200 == 0) {
      std::printf("%-15s %7.1f %7.3f %9.0f %9.0f %9.0f %11.1f %8.3f\n",
                  leg_change ? profile[s.leg].name.c_str() : "",
                  s.t, s.wf, s.performance.speeds[0],
                  s.performance.speeds[1], s.performance.t4,
                  s.performance.thrust / 1e3,
                  std::min(s.performance.surge_margins[0],
                           s.performance.surge_margins[1]));
      last_leg = s.leg;
    }
  }

  std::printf("\nmission fuel burned: %.1f kg; minimum surge margin: %.3f\n",
              r.fuel_burned_kg, r.min_surge_margin);
  std::printf("remote calls: %d; simulated network time: %.1f s\n",
              backend.total_calls(),
              util::sim_to_ms(backend.elapsed_virtual_us()) / 1000.0);
  return 0;
}
