// heterogeneous_marshal — data exchange across unlike machines (§4.1).
//
// Demonstrates, at the byte level, the heterogeneity problems the paper
// reports adding the Cray Y-MP and IBM machines to Schooner:
//   * the same double's native image on Sparc (IEEE big-endian), i860
//     (IEEE little-endian), Cray (64-bit, 15-bit exponent) and IBM/370
//     (hexadecimal float);
//   * precision movement through the UTS canonical form;
//   * the out-of-range policy — a Cray value beyond IEEE range raises an
//     error instead of becoming infinity (the rejected alternative);
//   * Fortran name-case conventions resolved by Manager synonyms.
//
//   $ ./heterogeneous_marshal
#include <cstdio>

#include "rpc/schooner.hpp"
#include "uts/canonical.hpp"

using namespace npss;
using uts::Value;

namespace {

void show_native_images(double value) {
  std::printf("native images of %.17g:\n", value);
  for (const char* name :
       {"sun-sparc10", "intel-i860", "cray-ymp", "ibm-370"}) {
    const arch::ArchDescriptor& a = arch::arch_catalog(name);
    util::Bytes image = arch::native_double(a, value);
    std::printf("  %-12s %-10s  %s\n", name,
                std::string(arch::float_format_name(a.float_double)).c_str(),
                util::hex_dump(image).c_str());
  }
}

void show_precision_loss() {
  std::printf("\nprecision through the canonical form (double = pi):\n");
  const double pi = 3.14159265358979323846;
  for (const char* name : {"sun-sparc10", "cray-ymp", "ibm-370"}) {
    const arch::ArchDescriptor& a = arch::arch_catalog(name);
    util::ByteWriter w;
    uts::encode_canonical(a, uts::Type::real_double(), Value::real(pi), w);
    util::ByteReader r(w.bytes());
    double back = uts::decode_canonical(arch::arch_catalog("sun-sparc10"),
                                        uts::Type::real_double(), r)
                      .as_real();
    std::printf("  via %-12s -> %.17g  (rel err %.1e)\n", name, back,
                std::abs(back - pi) / pi);
  }
}

void show_out_of_range_policy() {
  std::printf("\nthe Cray out-of-range policy (paper chose error over "
              "IEEE infinity):\n");
  util::Bytes word = arch::cray_out_of_range_word();
  std::printf("  cray word %s (magnitude ~2^2000)\n",
              util::hex_dump(word).c_str());
  try {
    (void)arch::float_decode(arch::FloatFormatKind::kCray64, word);
    std::printf("  !! decoded quietly — policy violated\n");
  } catch (const util::RangeError& e) {
    std::printf("  -> RangeError: %s\n", e.what());
  }

  std::printf("\nsame policy for the Cray's 64-bit INTEGER into the "
              "canonical 32-bit integer:\n");
  try {
    util::ByteWriter w;
    uts::encode_canonical(arch::arch_catalog("cray-ymp"),
                          uts::Type::integer(),
                          Value::integer(std::int64_t{1} << 40), w);
    std::printf("  !! encoded quietly — policy violated\n");
  } catch (const util::RangeError& e) {
    std::printf("  -> RangeError: %s\n", e.what());
  }
}

const char* kSumSpec = R"(
  export sumsq prog(
      "xs" val array[8] of double,
      "sum" res double)
)";

}  // namespace

int main() {
  show_native_images(101325.0);
  show_precision_loss();
  show_out_of_range_policy();

  // A real call Sparc -> Cray: the request is marshaled from IEEE,
  // computed on Cray words, and the reply re-quantized on the way back.
  sim::Cluster cluster;
  cluster.add_machine("sparc", "sun-sparc10", "site");
  cluster.add_machine("cray", "cray-ymp", "site");
  cluster.install_image(
      "cray", "/npss/bin/sumsq",
      rpc::make_procedure_image(kSumSpec, {{"sumsq", [](rpc::ProcCall& c) {
                                   double sum = 0.0;
                                   for (double x : c.reals("xs")) {
                                     sum += x * x;
                                   }
                                   c.set_real("sum", sum);
                                 }}}));
  rpc::SchoonerSystem schooner(cluster, "sparc");
  auto client = schooner.make_client("sparc", "marshal-demo");
  rpc::StartResult started = client->contact_schx("cray", "/npss/bin/sumsq");
  std::printf("\nthe Cray's Fortran compiler exported '%s'; importing "
              "'sumsq' still binds (Manager case synonyms):\n",
              started.exports[0].first.c_str());
  auto sumsq = client->import_proc(
      "sumsq", "import sumsq prog(\"xs\" val array[8] of double, "
               "\"sum\" res double)");
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  rpc::CallResult reply = sumsq->call({Value::real_array(xs), Value::real(0)},
                                      rpc::CallOptions::legacy());
  uts::ValueList& out = reply.values_or_raise();
  std::printf("  sum of squares over the wire: %.12f (exact 204; Cray's\n"
              "  48-bit mantissa quantizes at ~7e-15 relative)\n",
              out[1].as_real());
  client->quit();
  return 0;
}
