file(REMOVE_RECURSE
  "CMakeFiles/test_network_executive.dir/test_network_executive.cpp.o"
  "CMakeFiles/test_network_executive.dir/test_network_executive.cpp.o.d"
  "test_network_executive"
  "test_network_executive.pdb"
  "test_network_executive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_executive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
