# Empty dependencies file for test_network_executive.
# This may be replaced when dependencies are built.
