# Empty compiler generated dependencies file for test_rpc_edge.
# This may be replaced when dependencies are built.
