file(REMOVE_RECURSE
  "CMakeFiles/test_rpc_edge.dir/test_rpc_edge.cpp.o"
  "CMakeFiles/test_rpc_edge.dir/test_rpc_edge.cpp.o.d"
  "test_rpc_edge"
  "test_rpc_edge.pdb"
  "test_rpc_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpc_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
