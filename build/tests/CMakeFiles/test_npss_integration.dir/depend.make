# Empty dependencies file for test_npss_integration.
# This may be replaced when dependencies are built.
