file(REMOVE_RECURSE
  "CMakeFiles/test_npss_integration.dir/test_npss_integration.cpp.o"
  "CMakeFiles/test_npss_integration.dir/test_npss_integration.cpp.o.d"
  "test_npss_integration"
  "test_npss_integration.pdb"
  "test_npss_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npss_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
