file(REMOVE_RECURSE
  "CMakeFiles/test_mission.dir/test_mission.cpp.o"
  "CMakeFiles/test_mission.dir/test_mission.cpp.o.d"
  "test_mission"
  "test_mission.pdb"
  "test_mission[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
