# Empty dependencies file for test_mission.
# This may be replaced when dependencies are built.
