# Empty dependencies file for test_tcp_transport.
# This may be replaced when dependencies are built.
