file(REMOVE_RECURSE
  "CMakeFiles/test_stubgen_generated.dir/test_stubgen_generated.cpp.o"
  "CMakeFiles/test_stubgen_generated.dir/test_stubgen_generated.cpp.o.d"
  "shaft_stubs.hpp"
  "test_stubgen_generated"
  "test_stubgen_generated.pdb"
  "test_stubgen_generated[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stubgen_generated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
