# Empty dependencies file for test_volume_dynamics.
# This may be replaced when dependencies are built.
