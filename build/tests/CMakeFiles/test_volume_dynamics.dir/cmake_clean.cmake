file(REMOVE_RECURSE
  "CMakeFiles/test_volume_dynamics.dir/test_volume_dynamics.cpp.o"
  "CMakeFiles/test_volume_dynamics.dir/test_volume_dynamics.cpp.o.d"
  "test_volume_dynamics"
  "test_volume_dynamics.pdb"
  "test_volume_dynamics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_volume_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
