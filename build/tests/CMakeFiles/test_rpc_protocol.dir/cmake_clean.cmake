file(REMOVE_RECURSE
  "CMakeFiles/test_rpc_protocol.dir/test_rpc_protocol.cpp.o"
  "CMakeFiles/test_rpc_protocol.dir/test_rpc_protocol.cpp.o.d"
  "test_rpc_protocol"
  "test_rpc_protocol.pdb"
  "test_rpc_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpc_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
