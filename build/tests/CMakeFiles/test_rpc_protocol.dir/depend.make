# Empty dependencies file for test_rpc_protocol.
# This may be replaced when dependencies are built.
