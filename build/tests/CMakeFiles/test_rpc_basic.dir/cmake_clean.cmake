file(REMOVE_RECURSE
  "CMakeFiles/test_rpc_basic.dir/test_rpc_basic.cpp.o"
  "CMakeFiles/test_rpc_basic.dir/test_rpc_basic.cpp.o.d"
  "test_rpc_basic"
  "test_rpc_basic.pdb"
  "test_rpc_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpc_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
