# Empty compiler generated dependencies file for test_rpc_basic.
# This may be replaced when dependencies are built.
