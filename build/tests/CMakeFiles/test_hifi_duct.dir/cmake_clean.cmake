file(REMOVE_RECURSE
  "CMakeFiles/test_hifi_duct.dir/test_hifi_duct.cpp.o"
  "CMakeFiles/test_hifi_duct.dir/test_hifi_duct.cpp.o.d"
  "test_hifi_duct"
  "test_hifi_duct.pdb"
  "test_hifi_duct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hifi_duct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
