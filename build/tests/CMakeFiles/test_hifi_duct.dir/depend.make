# Empty dependencies file for test_hifi_duct.
# This may be replaced when dependencies are built.
