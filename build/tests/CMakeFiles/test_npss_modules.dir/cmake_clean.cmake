file(REMOVE_RECURSE
  "CMakeFiles/test_npss_modules.dir/test_npss_modules.cpp.o"
  "CMakeFiles/test_npss_modules.dir/test_npss_modules.cpp.o.d"
  "test_npss_modules"
  "test_npss_modules.pdb"
  "test_npss_modules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npss_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
