# Empty compiler generated dependencies file for test_tess_engine.
# This may be replaced when dependencies are built.
