file(REMOVE_RECURSE
  "CMakeFiles/test_tess_engine.dir/test_tess_engine.cpp.o"
  "CMakeFiles/test_tess_engine.dir/test_tess_engine.cpp.o.d"
  "test_tess_engine"
  "test_tess_engine.pdb"
  "test_tess_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tess_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
