# Empty dependencies file for test_tess_components.
# This may be replaced when dependencies are built.
