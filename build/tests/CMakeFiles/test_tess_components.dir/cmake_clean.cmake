file(REMOVE_RECURSE
  "CMakeFiles/test_tess_components.dir/test_tess_components.cpp.o"
  "CMakeFiles/test_tess_components.dir/test_tess_components.cpp.o.d"
  "test_tess_components"
  "test_tess_components.pdb"
  "test_tess_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tess_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
