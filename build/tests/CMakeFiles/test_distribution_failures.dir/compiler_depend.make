# Empty compiler generated dependencies file for test_distribution_failures.
# This may be replaced when dependencies are built.
