file(REMOVE_RECURSE
  "CMakeFiles/test_distribution_failures.dir/test_distribution_failures.cpp.o"
  "CMakeFiles/test_distribution_failures.dir/test_distribution_failures.cpp.o.d"
  "test_distribution_failures"
  "test_distribution_failures.pdb"
  "test_distribution_failures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distribution_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
