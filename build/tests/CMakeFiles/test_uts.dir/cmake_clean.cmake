file(REMOVE_RECURSE
  "CMakeFiles/test_uts.dir/test_uts.cpp.o"
  "CMakeFiles/test_uts.dir/test_uts.cpp.o.d"
  "test_uts"
  "test_uts.pdb"
  "test_uts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
