# Empty dependencies file for test_uts.
# This may be replaced when dependencies are built.
