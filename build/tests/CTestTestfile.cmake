# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rpc_basic[1]_include.cmake")
include("/root/repo/build/tests/test_npss_integration[1]_include.cmake")
include("/root/repo/build/tests/test_network_executive[1]_include.cmake")
include("/root/repo/build/tests/test_stubgen_generated[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_uts[1]_include.cmake")
include("/root/repo/build/tests/test_spec_parser[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_tess_components[1]_include.cmake")
include("/root/repo/build/tests/test_tess_engine[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_rpc_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_volume_dynamics[1]_include.cmake")
include("/root/repo/build/tests/test_failures[1]_include.cmake")
include("/root/repo/build/tests/test_hifi_duct[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_properties[1]_include.cmake")
include("/root/repo/build/tests/test_mission[1]_include.cmake")
include("/root/repo/build/tests/test_distribution_failures[1]_include.cmake")
include("/root/repo/build/tests/test_monitoring[1]_include.cmake")
include("/root/repo/build/tests/test_tcp_transport[1]_include.cmake")
include("/root/repo/build/tests/test_npss_modules[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_rpc_edge[1]_include.cmake")
