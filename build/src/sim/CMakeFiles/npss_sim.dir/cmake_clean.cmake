file(REMOVE_RECURSE
  "CMakeFiles/npss_sim.dir/cluster.cpp.o"
  "CMakeFiles/npss_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/npss_sim.dir/network.cpp.o"
  "CMakeFiles/npss_sim.dir/network.cpp.o.d"
  "libnpss_sim.a"
  "libnpss_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npss_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
