# Empty dependencies file for npss_sim.
# This may be replaced when dependencies are built.
