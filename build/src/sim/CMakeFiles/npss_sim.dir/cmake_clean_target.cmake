file(REMOVE_RECURSE
  "libnpss_sim.a"
)
