file(REMOVE_RECURSE
  "CMakeFiles/npss_glue.dir/modules.cpp.o"
  "CMakeFiles/npss_glue.dir/modules.cpp.o.d"
  "CMakeFiles/npss_glue.dir/network_driver.cpp.o"
  "CMakeFiles/npss_glue.dir/network_driver.cpp.o.d"
  "CMakeFiles/npss_glue.dir/procedures.cpp.o"
  "CMakeFiles/npss_glue.dir/procedures.cpp.o.d"
  "CMakeFiles/npss_glue.dir/remote_backend.cpp.o"
  "CMakeFiles/npss_glue.dir/remote_backend.cpp.o.d"
  "CMakeFiles/npss_glue.dir/runtime.cpp.o"
  "CMakeFiles/npss_glue.dir/runtime.cpp.o.d"
  "libnpss_glue.a"
  "libnpss_glue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npss_glue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
