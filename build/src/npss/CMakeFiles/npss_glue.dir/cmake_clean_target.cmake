file(REMOVE_RECURSE
  "libnpss_glue.a"
)
