# Empty compiler generated dependencies file for npss_glue.
# This may be replaced when dependencies are built.
