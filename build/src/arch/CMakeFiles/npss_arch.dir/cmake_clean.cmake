file(REMOVE_RECURSE
  "CMakeFiles/npss_arch.dir/arch.cpp.o"
  "CMakeFiles/npss_arch.dir/arch.cpp.o.d"
  "CMakeFiles/npss_arch.dir/float_format.cpp.o"
  "CMakeFiles/npss_arch.dir/float_format.cpp.o.d"
  "libnpss_arch.a"
  "libnpss_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npss_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
