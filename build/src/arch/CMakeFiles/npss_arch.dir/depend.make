# Empty dependencies file for npss_arch.
# This may be replaced when dependencies are built.
