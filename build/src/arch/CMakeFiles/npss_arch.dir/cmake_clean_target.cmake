file(REMOVE_RECURSE
  "libnpss_arch.a"
)
