file(REMOVE_RECURSE
  "CMakeFiles/npss_util.dir/bytes.cpp.o"
  "CMakeFiles/npss_util.dir/bytes.cpp.o.d"
  "CMakeFiles/npss_util.dir/log.cpp.o"
  "CMakeFiles/npss_util.dir/log.cpp.o.d"
  "CMakeFiles/npss_util.dir/status.cpp.o"
  "CMakeFiles/npss_util.dir/status.cpp.o.d"
  "libnpss_util.a"
  "libnpss_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npss_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
