# Empty dependencies file for npss_util.
# This may be replaced when dependencies are built.
