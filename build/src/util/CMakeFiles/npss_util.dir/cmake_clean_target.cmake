file(REMOVE_RECURSE
  "libnpss_util.a"
)
