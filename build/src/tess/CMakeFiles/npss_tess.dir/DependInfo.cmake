
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tess/components.cpp" "src/tess/CMakeFiles/npss_tess.dir/components.cpp.o" "gcc" "src/tess/CMakeFiles/npss_tess.dir/components.cpp.o.d"
  "/root/repo/src/tess/engine.cpp" "src/tess/CMakeFiles/npss_tess.dir/engine.cpp.o" "gcc" "src/tess/CMakeFiles/npss_tess.dir/engine.cpp.o.d"
  "/root/repo/src/tess/failures.cpp" "src/tess/CMakeFiles/npss_tess.dir/failures.cpp.o" "gcc" "src/tess/CMakeFiles/npss_tess.dir/failures.cpp.o.d"
  "/root/repo/src/tess/gas.cpp" "src/tess/CMakeFiles/npss_tess.dir/gas.cpp.o" "gcc" "src/tess/CMakeFiles/npss_tess.dir/gas.cpp.o.d"
  "/root/repo/src/tess/hifi_duct.cpp" "src/tess/CMakeFiles/npss_tess.dir/hifi_duct.cpp.o" "gcc" "src/tess/CMakeFiles/npss_tess.dir/hifi_duct.cpp.o.d"
  "/root/repo/src/tess/maps.cpp" "src/tess/CMakeFiles/npss_tess.dir/maps.cpp.o" "gcc" "src/tess/CMakeFiles/npss_tess.dir/maps.cpp.o.d"
  "/root/repo/src/tess/mission.cpp" "src/tess/CMakeFiles/npss_tess.dir/mission.cpp.o" "gcc" "src/tess/CMakeFiles/npss_tess.dir/mission.cpp.o.d"
  "/root/repo/src/tess/remote_seam.cpp" "src/tess/CMakeFiles/npss_tess.dir/remote_seam.cpp.o" "gcc" "src/tess/CMakeFiles/npss_tess.dir/remote_seam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solvers/CMakeFiles/npss_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/npss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
