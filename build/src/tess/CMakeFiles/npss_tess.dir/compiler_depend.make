# Empty compiler generated dependencies file for npss_tess.
# This may be replaced when dependencies are built.
