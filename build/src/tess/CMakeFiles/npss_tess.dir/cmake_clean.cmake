file(REMOVE_RECURSE
  "CMakeFiles/npss_tess.dir/components.cpp.o"
  "CMakeFiles/npss_tess.dir/components.cpp.o.d"
  "CMakeFiles/npss_tess.dir/engine.cpp.o"
  "CMakeFiles/npss_tess.dir/engine.cpp.o.d"
  "CMakeFiles/npss_tess.dir/failures.cpp.o"
  "CMakeFiles/npss_tess.dir/failures.cpp.o.d"
  "CMakeFiles/npss_tess.dir/gas.cpp.o"
  "CMakeFiles/npss_tess.dir/gas.cpp.o.d"
  "CMakeFiles/npss_tess.dir/hifi_duct.cpp.o"
  "CMakeFiles/npss_tess.dir/hifi_duct.cpp.o.d"
  "CMakeFiles/npss_tess.dir/maps.cpp.o"
  "CMakeFiles/npss_tess.dir/maps.cpp.o.d"
  "CMakeFiles/npss_tess.dir/mission.cpp.o"
  "CMakeFiles/npss_tess.dir/mission.cpp.o.d"
  "CMakeFiles/npss_tess.dir/remote_seam.cpp.o"
  "CMakeFiles/npss_tess.dir/remote_seam.cpp.o.d"
  "libnpss_tess.a"
  "libnpss_tess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npss_tess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
