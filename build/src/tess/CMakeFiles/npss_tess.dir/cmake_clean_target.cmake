file(REMOVE_RECURSE
  "libnpss_tess.a"
)
