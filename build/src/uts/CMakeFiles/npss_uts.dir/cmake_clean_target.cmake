file(REMOVE_RECURSE
  "libnpss_uts.a"
)
