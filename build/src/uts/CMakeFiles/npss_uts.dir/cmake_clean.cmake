file(REMOVE_RECURSE
  "CMakeFiles/npss_uts.dir/canonical.cpp.o"
  "CMakeFiles/npss_uts.dir/canonical.cpp.o.d"
  "CMakeFiles/npss_uts.dir/spec.cpp.o"
  "CMakeFiles/npss_uts.dir/spec.cpp.o.d"
  "CMakeFiles/npss_uts.dir/types.cpp.o"
  "CMakeFiles/npss_uts.dir/types.cpp.o.d"
  "CMakeFiles/npss_uts.dir/value.cpp.o"
  "CMakeFiles/npss_uts.dir/value.cpp.o.d"
  "libnpss_uts.a"
  "libnpss_uts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npss_uts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
