
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uts/canonical.cpp" "src/uts/CMakeFiles/npss_uts.dir/canonical.cpp.o" "gcc" "src/uts/CMakeFiles/npss_uts.dir/canonical.cpp.o.d"
  "/root/repo/src/uts/spec.cpp" "src/uts/CMakeFiles/npss_uts.dir/spec.cpp.o" "gcc" "src/uts/CMakeFiles/npss_uts.dir/spec.cpp.o.d"
  "/root/repo/src/uts/types.cpp" "src/uts/CMakeFiles/npss_uts.dir/types.cpp.o" "gcc" "src/uts/CMakeFiles/npss_uts.dir/types.cpp.o.d"
  "/root/repo/src/uts/value.cpp" "src/uts/CMakeFiles/npss_uts.dir/value.cpp.o" "gcc" "src/uts/CMakeFiles/npss_uts.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/npss_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/npss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
