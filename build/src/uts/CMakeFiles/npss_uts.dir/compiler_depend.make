# Empty compiler generated dependencies file for npss_uts.
# This may be replaced when dependencies are built.
