file(REMOVE_RECURSE
  "CMakeFiles/npss_flow.dir/basic_modules.cpp.o"
  "CMakeFiles/npss_flow.dir/basic_modules.cpp.o.d"
  "CMakeFiles/npss_flow.dir/module.cpp.o"
  "CMakeFiles/npss_flow.dir/module.cpp.o.d"
  "CMakeFiles/npss_flow.dir/network.cpp.o"
  "CMakeFiles/npss_flow.dir/network.cpp.o.d"
  "CMakeFiles/npss_flow.dir/widget.cpp.o"
  "CMakeFiles/npss_flow.dir/widget.cpp.o.d"
  "libnpss_flow.a"
  "libnpss_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npss_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
