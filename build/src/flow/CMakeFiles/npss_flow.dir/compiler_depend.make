# Empty compiler generated dependencies file for npss_flow.
# This may be replaced when dependencies are built.
