file(REMOVE_RECURSE
  "libnpss_flow.a"
)
