
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/basic_modules.cpp" "src/flow/CMakeFiles/npss_flow.dir/basic_modules.cpp.o" "gcc" "src/flow/CMakeFiles/npss_flow.dir/basic_modules.cpp.o.d"
  "/root/repo/src/flow/module.cpp" "src/flow/CMakeFiles/npss_flow.dir/module.cpp.o" "gcc" "src/flow/CMakeFiles/npss_flow.dir/module.cpp.o.d"
  "/root/repo/src/flow/network.cpp" "src/flow/CMakeFiles/npss_flow.dir/network.cpp.o" "gcc" "src/flow/CMakeFiles/npss_flow.dir/network.cpp.o.d"
  "/root/repo/src/flow/widget.cpp" "src/flow/CMakeFiles/npss_flow.dir/widget.cpp.o" "gcc" "src/flow/CMakeFiles/npss_flow.dir/widget.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uts/CMakeFiles/npss_uts.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/npss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/npss_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
