file(REMOVE_RECURSE
  "libnpss_stubgen.a"
)
