file(REMOVE_RECURSE
  "CMakeFiles/npss_stubgen.dir/stubgen.cpp.o"
  "CMakeFiles/npss_stubgen.dir/stubgen.cpp.o.d"
  "libnpss_stubgen.a"
  "libnpss_stubgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npss_stubgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
