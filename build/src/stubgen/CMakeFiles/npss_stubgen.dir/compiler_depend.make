# Empty compiler generated dependencies file for npss_stubgen.
# This may be replaced when dependencies are built.
