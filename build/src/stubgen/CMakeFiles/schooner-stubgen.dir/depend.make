# Empty dependencies file for schooner-stubgen.
# This may be replaced when dependencies are built.
