file(REMOVE_RECURSE
  "CMakeFiles/schooner-stubgen.dir/main.cpp.o"
  "CMakeFiles/schooner-stubgen.dir/main.cpp.o.d"
  "schooner-stubgen"
  "schooner-stubgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schooner-stubgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
