# Empty compiler generated dependencies file for npss_rpc.
# This may be replaced when dependencies are built.
