file(REMOVE_RECURSE
  "libnpss_rpc.a"
)
