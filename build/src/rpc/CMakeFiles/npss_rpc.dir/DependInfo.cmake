
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/calling.cpp" "src/rpc/CMakeFiles/npss_rpc.dir/calling.cpp.o" "gcc" "src/rpc/CMakeFiles/npss_rpc.dir/calling.cpp.o.d"
  "/root/repo/src/rpc/client.cpp" "src/rpc/CMakeFiles/npss_rpc.dir/client.cpp.o" "gcc" "src/rpc/CMakeFiles/npss_rpc.dir/client.cpp.o.d"
  "/root/repo/src/rpc/host.cpp" "src/rpc/CMakeFiles/npss_rpc.dir/host.cpp.o" "gcc" "src/rpc/CMakeFiles/npss_rpc.dir/host.cpp.o.d"
  "/root/repo/src/rpc/io.cpp" "src/rpc/CMakeFiles/npss_rpc.dir/io.cpp.o" "gcc" "src/rpc/CMakeFiles/npss_rpc.dir/io.cpp.o.d"
  "/root/repo/src/rpc/manager.cpp" "src/rpc/CMakeFiles/npss_rpc.dir/manager.cpp.o" "gcc" "src/rpc/CMakeFiles/npss_rpc.dir/manager.cpp.o.d"
  "/root/repo/src/rpc/message.cpp" "src/rpc/CMakeFiles/npss_rpc.dir/message.cpp.o" "gcc" "src/rpc/CMakeFiles/npss_rpc.dir/message.cpp.o.d"
  "/root/repo/src/rpc/schooner.cpp" "src/rpc/CMakeFiles/npss_rpc.dir/schooner.cpp.o" "gcc" "src/rpc/CMakeFiles/npss_rpc.dir/schooner.cpp.o.d"
  "/root/repo/src/rpc/server.cpp" "src/rpc/CMakeFiles/npss_rpc.dir/server.cpp.o" "gcc" "src/rpc/CMakeFiles/npss_rpc.dir/server.cpp.o.d"
  "/root/repo/src/rpc/tcp_transport.cpp" "src/rpc/CMakeFiles/npss_rpc.dir/tcp_transport.cpp.o" "gcc" "src/rpc/CMakeFiles/npss_rpc.dir/tcp_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/npss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/uts/CMakeFiles/npss_uts.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/npss_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/npss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
