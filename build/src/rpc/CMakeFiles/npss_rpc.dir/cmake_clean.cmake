file(REMOVE_RECURSE
  "CMakeFiles/npss_rpc.dir/calling.cpp.o"
  "CMakeFiles/npss_rpc.dir/calling.cpp.o.d"
  "CMakeFiles/npss_rpc.dir/client.cpp.o"
  "CMakeFiles/npss_rpc.dir/client.cpp.o.d"
  "CMakeFiles/npss_rpc.dir/host.cpp.o"
  "CMakeFiles/npss_rpc.dir/host.cpp.o.d"
  "CMakeFiles/npss_rpc.dir/io.cpp.o"
  "CMakeFiles/npss_rpc.dir/io.cpp.o.d"
  "CMakeFiles/npss_rpc.dir/manager.cpp.o"
  "CMakeFiles/npss_rpc.dir/manager.cpp.o.d"
  "CMakeFiles/npss_rpc.dir/message.cpp.o"
  "CMakeFiles/npss_rpc.dir/message.cpp.o.d"
  "CMakeFiles/npss_rpc.dir/schooner.cpp.o"
  "CMakeFiles/npss_rpc.dir/schooner.cpp.o.d"
  "CMakeFiles/npss_rpc.dir/server.cpp.o"
  "CMakeFiles/npss_rpc.dir/server.cpp.o.d"
  "CMakeFiles/npss_rpc.dir/tcp_transport.cpp.o"
  "CMakeFiles/npss_rpc.dir/tcp_transport.cpp.o.d"
  "libnpss_rpc.a"
  "libnpss_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npss_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
