file(REMOVE_RECURSE
  "CMakeFiles/npss_solvers.dir/linalg.cpp.o"
  "CMakeFiles/npss_solvers.dir/linalg.cpp.o.d"
  "CMakeFiles/npss_solvers.dir/newton.cpp.o"
  "CMakeFiles/npss_solvers.dir/newton.cpp.o.d"
  "CMakeFiles/npss_solvers.dir/ode.cpp.o"
  "CMakeFiles/npss_solvers.dir/ode.cpp.o.d"
  "libnpss_solvers.a"
  "libnpss_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npss_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
