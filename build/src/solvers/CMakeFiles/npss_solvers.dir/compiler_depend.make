# Empty compiler generated dependencies file for npss_solvers.
# This may be replaced when dependencies are built.
