
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solvers/linalg.cpp" "src/solvers/CMakeFiles/npss_solvers.dir/linalg.cpp.o" "gcc" "src/solvers/CMakeFiles/npss_solvers.dir/linalg.cpp.o.d"
  "/root/repo/src/solvers/newton.cpp" "src/solvers/CMakeFiles/npss_solvers.dir/newton.cpp.o" "gcc" "src/solvers/CMakeFiles/npss_solvers.dir/newton.cpp.o.d"
  "/root/repo/src/solvers/ode.cpp" "src/solvers/CMakeFiles/npss_solvers.dir/ode.cpp.o" "gcc" "src/solvers/CMakeFiles/npss_solvers.dir/ode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/npss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
