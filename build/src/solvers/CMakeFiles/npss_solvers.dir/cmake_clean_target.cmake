file(REMOVE_RECURSE
  "libnpss_solvers.a"
)
