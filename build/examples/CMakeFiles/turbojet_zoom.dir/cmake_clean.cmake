file(REMOVE_RECURSE
  "CMakeFiles/turbojet_zoom.dir/turbojet_zoom.cpp.o"
  "CMakeFiles/turbojet_zoom.dir/turbojet_zoom.cpp.o.d"
  "turbojet_zoom"
  "turbojet_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbojet_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
