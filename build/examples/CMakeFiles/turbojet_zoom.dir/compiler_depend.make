# Empty compiler generated dependencies file for turbojet_zoom.
# This may be replaced when dependencies are built.
