# Empty dependencies file for heterogeneous_marshal.
# This may be replaced when dependencies are built.
