file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_marshal.dir/heterogeneous_marshal.cpp.o"
  "CMakeFiles/heterogeneous_marshal.dir/heterogeneous_marshal.cpp.o.d"
  "heterogeneous_marshal"
  "heterogeneous_marshal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_marshal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
