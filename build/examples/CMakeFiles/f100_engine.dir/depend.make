# Empty dependencies file for f100_engine.
# This may be replaced when dependencies are built.
