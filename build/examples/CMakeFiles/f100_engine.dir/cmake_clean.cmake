file(REMOVE_RECURSE
  "CMakeFiles/f100_engine.dir/f100_engine.cpp.o"
  "CMakeFiles/f100_engine.dir/f100_engine.cpp.o.d"
  "f100_engine"
  "f100_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f100_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
