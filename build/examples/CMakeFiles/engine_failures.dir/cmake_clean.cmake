file(REMOVE_RECURSE
  "CMakeFiles/engine_failures.dir/engine_failures.cpp.o"
  "CMakeFiles/engine_failures.dir/engine_failures.cpp.o.d"
  "engine_failures"
  "engine_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
