# Empty dependencies file for engine_failures.
# This may be replaced when dependencies are built.
