file(REMOVE_RECURSE
  "CMakeFiles/flight_profile.dir/flight_profile.cpp.o"
  "CMakeFiles/flight_profile.dir/flight_profile.cpp.o.d"
  "flight_profile"
  "flight_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flight_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
