# Empty dependencies file for flight_profile.
# This may be replaced when dependencies are built.
