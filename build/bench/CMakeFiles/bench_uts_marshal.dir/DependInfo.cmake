
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_uts_marshal.cpp" "bench/CMakeFiles/bench_uts_marshal.dir/bench_uts_marshal.cpp.o" "gcc" "bench/CMakeFiles/bench_uts_marshal.dir/bench_uts_marshal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uts/CMakeFiles/npss_uts.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/npss_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/npss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
