# Empty dependencies file for bench_uts_marshal.
# This may be replaced when dependencies are built.
