file(REMOVE_RECURSE
  "CMakeFiles/bench_uts_marshal.dir/bench_uts_marshal.cpp.o"
  "CMakeFiles/bench_uts_marshal.dir/bench_uts_marshal.cpp.o.d"
  "bench_uts_marshal"
  "bench_uts_marshal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uts_marshal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
