# Empty dependencies file for bench_lines.
# This may be replaced when dependencies are built.
