file(REMOVE_RECURSE
  "CMakeFiles/bench_lines.dir/bench_lines.cpp.o"
  "CMakeFiles/bench_lines.dir/bench_lines.cpp.o.d"
  "bench_lines"
  "bench_lines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
