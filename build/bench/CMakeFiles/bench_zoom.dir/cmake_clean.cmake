file(REMOVE_RECURSE
  "CMakeFiles/bench_zoom.dir/bench_zoom.cpp.o"
  "CMakeFiles/bench_zoom.dir/bench_zoom.cpp.o.d"
  "bench_zoom"
  "bench_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
