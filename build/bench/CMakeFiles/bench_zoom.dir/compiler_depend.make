# Empty compiler generated dependencies file for bench_zoom.
# This may be replaced when dependencies are built.
