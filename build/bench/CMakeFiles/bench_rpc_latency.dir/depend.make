# Empty dependencies file for bench_rpc_latency.
# This may be replaced when dependencies are built.
