file(REMOVE_RECURSE
  "CMakeFiles/bench_rpc_latency.dir/bench_rpc_latency.cpp.o"
  "CMakeFiles/bench_rpc_latency.dir/bench_rpc_latency.cpp.o.d"
  "bench_rpc_latency"
  "bench_rpc_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rpc_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
